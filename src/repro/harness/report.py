"""ASCII reporting: the tables and series the paper's figures plot."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..sim import geomean


def format_normalized_table(rows: Dict[str, Dict[str, float]],
                            designs: Sequence[str], title: str,
                            baseline: str = "IntelX86") -> str:
    """Benchmarks x designs table of throughput normalised to baseline,
    with a geomean summary row (what Figures 9 and 10 plot)."""
    name_width = max(len(name) for name in list(rows) + ["geomean"]) + 2
    header = f"{'benchmark':<{name_width}}" + "".join(
        f"{design:>12}" for design in designs)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for benchmark, values in rows.items():
        line = f"{benchmark:<{name_width}}"
        for design in designs:
            line += f"{values[design]:>12.3f}"
        lines.append(line)
    lines.append("-" * len(header))
    summary = f"{'geomean':<{name_width}}"
    for design in designs:
        summary += f"{geomean([rows[b][design] for b in rows]):>12.3f}"
    lines.append(summary)
    return "\n".join(lines)


def format_series(points: Dict, x_label: str, y_label: str,
                  title: str) -> str:
    """A one-parameter sweep as an x/y table (Figures 11 and 12)."""
    lines = [title, "=" * max(len(title), 40),
             f"{x_label:>16} | {y_label}"]
    lines.append("-" * max(len(title), 40))
    for x_value, y_value in points.items():
        if isinstance(y_value, dict):
            rendered = "  ".join(f"{name}={value:.3f}"
                                 for name, value in y_value.items())
        else:
            rendered = f"{y_value:.3f}"
        lines.append(f"{x_value!s:>16} | {rendered}")
    return "\n".join(lines)


def format_bar_chart(values: Dict[str, float], title: str,
                     width: int = 48, reference: float = None) -> str:
    """Horizontal ASCII bars (the closest a terminal gets to Figure 9).

    ``reference`` draws a tick at that value (e.g. the 1.0 baseline)."""
    if not values:
        raise ValueError("nothing to plot")
    top = max(values.values())
    if top <= 0:
        raise ValueError("bar values must be positive")
    label_width = max(len(name) for name in values) + 2
    lines = [title, "-" * (label_width + width + 8)]
    for name, value in values.items():
        bar_len = max(1, round(width * value / top))
        bar = "#" * bar_len
        if reference is not None and 0 < reference <= top:
            tick = max(1, round(width * reference / top)) - 1
            if tick >= len(bar):
                bar = bar + " " * (tick - len(bar)) + "|"
            else:
                bar = bar[:tick] + "|" + bar[tick + 1:]
        lines.append(f"{name:<{label_width}}{value:6.3f}  {bar}")
    return "\n".join(lines)


SPARK_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a numeric series as a fixed-width unicode sparkline.

    Longer series are downsampled by averaging equal chunks; shorter
    ones render one tick per value.  An empty series renders as the
    empty string, a flat one as the lowest tick (so the line length
    still reflects the data), and a non-positive ``width`` is clamped
    to one tick -- no input may crash a progress display."""
    values = [float(v) for v in values]
    if not values:
        return ""
    width = max(1, width)
    if len(values) > width:
        chunked = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            chunk = values[lo:hi]
            chunked.append(sum(chunk) / len(chunk))
        values = chunked
    low, high = min(values), max(values)
    span = high - low
    if span == 0:
        return SPARK_TICKS[0] * len(values)
    top = len(SPARK_TICKS) - 1
    return "".join(
        SPARK_TICKS[min(top, int((v - low) / span * (top + 1)))]
        for v in values)


def format_timeseries(timeseries: Dict, title: str,
                      width: int = 60) -> str:
    """Render ``SimResult.timeseries`` (cycle-windowed series) as one
    sparkline per series with min/mean-ish/max annotations."""
    lines = [title, "=" * max(len(title), 40)]
    if not timeseries or not timeseries.get("series"):
        lines.append("(no time-series data; run with metrics enabled)")
        return "\n".join(lines)
    window = timeseries.get("window_cycles", 0)
    lines.append(f"window: {window} cycles")
    name_width = max(len(name) for name in timeseries["series"]) + 2
    for name, series in timeseries["series"].items():
        windows = series.get("windows", [])
        if series.get("kind") == "count":
            values = [w.get("count", 0) for w in windows]
        else:
            values = [w.get("mean", 0.0) for w in windows]
        if not values:
            lines.append(f"{name:<{name_width}}(empty)")
            continue
        spark = sparkline(values, width=width)
        low, high = min(values), max(values)
        note = f"min={low:g} max={high:g} windows={len(values)}"
        evicted = series.get("evicted_windows", 0)
        if evicted:
            note += f" (+{evicted} evicted)"
        lines.append(f"{name:<{name_width}}{spark}  {note}")
    total_evicted = sum(series.get("evicted_windows", 0)
                        for series in timeseries["series"].values())
    if total_evicted:
        lines.append(f"ring buffer: {total_evicted} windows evicted "
                     f"across {len(timeseries['series'])} series "
                     f"(oldest dropped; raise window_cycles or the "
                     f"ring size to keep them)")
    return "\n".join(lines)


def format_campaign_table(rows: List[Dict], title: str) -> str:
    """Per-cell summary of a crash-consistency campaign (plain dicts
    from :meth:`repro.validation.CampaignReport.rows`, so the harness
    never imports the validation package)."""
    header = (f"{'workload':<22}{'design':<14}{'trials':>7}{'fail':>6}"
              f"{'min cycle':>11}  violations")
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row in rows:
        minimal = row.get("minimal_cycle")
        lines.append(
            f"{row['workload']:<22}{row['design']:<14}"
            f"{row['trials']:>7}{row['failures']:>6}"
            f"{minimal if minimal is not None else '-':>11}  "
            f"{row['violation_kinds']}")
    return "\n".join(lines)


def format_misspec_table(rows: List[Dict], title: str) -> str:
    """Misspeculation-rate report (§8.4)."""
    header = (f"{'workload':<22}{'config':<18}{'load':>6}{'store':>7}"
              f"{'stale':>7}{'aborts':>8}{'commits':>9}")
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['workload']:<22}{row['config']:<18}"
            f"{row['load_misspec']:>6}{row['store_misspec']:>7}"
            f"{row['stale_loads']:>7}{row['aborts']:>8}{row['commits']:>9}")
    return "\n".join(lines)
