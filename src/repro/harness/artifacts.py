"""Experiment artifacts: persist regenerated figures as JSON.

``python -m repro.harness fig9 --save results/`` drops one
timestamp-free, diff-friendly JSON file per experiment so runs can be
compared across commits; :func:`load_artifact` reads them back and
:func:`diff_artifacts` reports which series moved by more than a
tolerance -- a poor man's regression tracker for the figures.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple


def _normalise(obj):
    """JSON can't key dicts by int/float: stringify keys recursively."""
    if isinstance(obj, dict):
        return {str(key): _normalise(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_normalise(item) for item in obj]
    return obj


def save_artifact(directory: str, name: str, payload,
                  meta: Dict = None) -> str:
    """Write ``<directory>/<name>.json``; returns the path.

    The write is atomic (temp file + rename) so concurrent executors
    sharing a result-cache directory never observe a torn artifact.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    document = {"experiment": name, "meta": _normalise(meta or {}),
                "data": _normalise(payload)}
    staging = f"{path}.tmp.{os.getpid()}"
    with open(staging, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(staging, path)
    return path


def load_artifact(path: str) -> Dict:
    with open(path) as handle:
        document = json.load(handle)
    for key in ("experiment", "data"):
        if key not in document:
            raise ValueError(f"{path} is not an experiment artifact "
                             f"(missing {key!r})")
    return document


def _flatten(prefix: str, obj, out: Dict[str, float]) -> None:
    if isinstance(obj, dict):
        for key, value in obj.items():
            _flatten(f"{prefix}/{key}" if prefix else str(key), value, out)
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix] = float(obj)


def diff_artifacts(old: Dict, new: Dict,
                   tolerance: float = 0.02) -> List[Tuple[str, float, float]]:
    """Numeric leaves that moved by more than ``tolerance`` (relative).

    Returns ``(path, old_value, new_value)`` tuples; missing/extra paths
    are reported with ``float('nan')`` on the absent side.
    """
    if old["experiment"] != new["experiment"]:
        raise ValueError(
            f"comparing different experiments: {old['experiment']} "
            f"vs {new['experiment']}")
    old_leaves: Dict[str, float] = {}
    new_leaves: Dict[str, float] = {}
    _flatten("", old["data"], old_leaves)
    _flatten("", new["data"], new_leaves)
    moved = []
    for path in sorted(set(old_leaves) | set(new_leaves)):
        before = old_leaves.get(path)
        after = new_leaves.get(path)
        if before is None or after is None:
            moved.append((path, float("nan") if before is None else before,
                          float("nan") if after is None else after))
            continue
        scale = max(abs(before), abs(after), 1e-12)
        if abs(after - before) / scale > tolerance:
            moved.append((path, before, after))
    return moved
