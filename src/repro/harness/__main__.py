"""CLI: regenerate any of the paper's tables and figures.

Usage::

    python -m repro.harness table3
    python -m repro.harness fig9  [--scale 1.0] [--threads 8] [--jobs 4]
    python -m repro.harness fig10 [--scale 0.5] [--cores 16,32,64]
    python -m repro.harness fig11 [--scale 1.0]
    python -m repro.harness fig12 [--scale 1.0]
    python -m repro.harness misspec
    python -m repro.harness ablations
    python -m repro.harness all   [--scale 0.5] [--jobs 0]
    python -m repro.harness trace array_swaps --design PMEMSpec \
        --trace-out trace.json
    python -m repro.harness metrics tpcc --design PMEM-Spec --summary
    python -m repro.harness profile tatp --design PMEM-Spec \
        --profile-out tatp.folded
    python -m repro.harness bench-history artifacts/ --html trends.html
    python -m repro.harness fig9 --events-out events.jsonl \
        --prom-out metrics.prom
    python -m repro.harness validate --planner stratified --budget 200 \
        --jobs 4 --report-out campaign.json
    python -m repro.harness validate --snapshot-every 50 \
        --snapshot-dir snaps/   # warm-start trials from rung snapshots
    python -m repro.harness snapshot capture --benchmark hashmap \
        --design PMEM-Spec --snapshot-every 50 --snapshot-dir snaps/
    python -m repro.harness snapshot inspect --snapshot-dir snaps/
    python -m repro.harness snapshot verify --benchmark hashmap \
        --design PMEM-Spec --snapshot-every 50 --snapshot-dir snaps/
    python -m repro.harness serve --service-root jobs/ --port 8642 \
        --jobs 4            # long-running simulation service
    python -m repro.harness submit --url http://127.0.0.1:8642 \
        --benchmarks hashmap,queue --designs PMEM-Spec --budget 40 \
        --wait              # submit a campaign job, poll to done
    python -m repro.harness status --url http://127.0.0.1:8642

``--jobs N`` fans the experiment grid out over N worker processes
(``0`` = all cores).  Results are cached per grid cell (keyed by a
content hash of the resolved run spec) so re-running an unchanged
figure is free; ``--no-cache`` disables the cache and ``--cache-dir``
relocates it.

Output channels: experiment *data* (tables, figures, JSON, traces) goes
to stdout; diagnostics (timings, cache provenance, progress) go to the
``repro.*`` loggers on stderr (``--log-level`` adjusts verbosity), so
``... fig9 > fig9.txt`` captures clean data.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import logging
import os
import signal
import sys
import tempfile
import time

from ..telemetry import configure_logging, console, get_logger, run_context
from .configs import DESIGNS, format_table3
from .experiments import (
    figure2_annotation_burden,
    figure9,
    figure10,
    figure10_summary,
    figure11,
    figure12,
    lazy_vs_eager_recovery,
    misspeculation_rates,
    naive_tagging_ablation,
    undo_vs_redo_ablation,
)
from .report import (
    format_bar_chart,
    format_misspec_table,
    format_normalized_table,
    format_series,
    format_timeseries,
)

log = get_logger("harness.cli")


class _Interrupted(Exception):
    """SIGINT/SIGTERM arrived mid-command; unwind, flush, exit clean."""

    def __init__(self, signum: int):
        super().__init__(signal.Signals(signum).name)
        self.signum = signum


def _install_signal_handlers():
    """Long-running commands (validate, sweeps, serve) must not die
    with a traceback and half-written artifacts: a signal raises
    :class:`_Interrupted`, the dispatch loop's ``finally`` flushes the
    event log and metrics exposition, and the process exits with the
    conventional ``128 + signum``.  (``serve`` replaces these with its
    own asyncio handlers for the graceful job-interrupt path.)

    Returns the displaced ``(signum, handler)`` pairs so the dispatch
    loop can put them back -- in-process callers (the test suite, a
    notebook) must not keep our handlers after ``main()`` returns.
    Forked pool workers restore defaults on their own
    (:func:`repro.harness.sweep.reset_worker_signals`)."""
    previous = []

    def handler(signum, _frame):
        raise _Interrupted(signum)

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous.append((signum, signal.signal(signum, handler)))
        except (ValueError, OSError):   # non-main thread / platform
            pass
    return previous


def _restore_signal_handlers(previous) -> None:
    for signum, handler in previous:
        try:
            signal.signal(signum, handler)
        except (ValueError, OSError):
            pass


def _maybe_save(args, name, payload):
    if getattr(args, "save", None):
        from .artifacts import save_artifact
        path = save_artifact(args.save, name, payload,
                             meta={"scale": args.scale, "seed": args.seed})
        log.info("saved %s", path)


def _timed(label, fn):
    start = time.time()
    with run_context(run_id=label):
        result = fn()
    log.info("%s done in %.1fs", label, time.time() - start)
    return result


def cmd_table3(args) -> None:
    console(format_table3())


def cmd_fig9(args) -> None:
    rows = _timed("fig9", lambda: figure9(n_threads=args.threads,
                                          scale=args.scale, seed=args.seed,
                                          executor=args.executor))
    _maybe_save(args, "fig9", rows)
    console(format_normalized_table(
        rows, DESIGNS,
        f"Figure 9: throughput normalised to IntelX86 "
        f"({args.threads}-core system)"))
    from ..sim import geomean
    console()
    console(format_bar_chart(
        {design: geomean([rows[b][design] for b in rows])
         for design in DESIGNS},
        "Figure 9 geomean (|= baseline)", reference=1.0))


def cmd_fig10(args) -> None:
    cores = [int(c) for c in args.cores.split(",")]
    results = _timed("fig10", lambda: figure10(core_counts=cores,
                                               scale=args.scale,
                                               seed=args.seed,
                                               executor=args.executor))
    _maybe_save(args, "fig10", results)
    for count, rows in results.items():
        console(format_normalized_table(
            rows, DESIGNS,
            f"Figure 10: normalised throughput ({count}-core system)"))
        console()
    summary = figure10_summary(results)
    console(format_series(summary, "cores", "geomean vs IntelX86",
                          "Figure 10 summary (geomean per design)"))


def cmd_fig11(args) -> None:
    series = _timed("fig11", lambda: figure11(scale=args.scale,
                                              seed=args.seed,
                                              executor=args.executor))
    _maybe_save(args, "fig11", series)
    console(format_series(
        series, "buffer entries", "throughput vs 16-entry",
        "Figure 11: speculation-buffer size sensitivity (8 cores)"))


def cmd_fig12(args) -> None:
    series = _timed("fig12", lambda: figure12(scale=args.scale,
                                              seed=args.seed,
                                              executor=args.executor))
    _maybe_save(args, "fig12", series)
    console(format_series(
        series, "persist-path ns", "geomean vs IntelX86",
        "Figure 12: persist-path latency sensitivity"))


def cmd_misspec(args) -> None:
    rows = _timed("misspec", lambda: misspeculation_rates(
        scale=args.scale, seed=args.seed, executor=args.executor))
    _maybe_save(args, "misspec", {"rows": rows})
    console(format_misspec_table(
        rows, "Section 8.4: misspeculation rates under PMEM-Spec"))


def cmd_fig2(args) -> None:
    rows = _timed("fig2", figure2_annotation_burden)
    console(format_series(
        rows, "benchmark", "annotations/FASE per flavor",
        "Figure 2 quantified: programmer-visible ordering annotations"))


def cmd_ablations(args) -> None:
    recovery = _timed("lazy-vs-eager",
                      lambda: lazy_vs_eager_recovery(scale=args.scale,
                                                     seed=args.seed,
                                                     executor=args.executor))
    console(format_series(recovery, "recovery mode", "outcome",
                          "Ablation: lazy vs eager recovery (§6.2)"))
    console()
    tagging = _timed("tagging", lambda: naive_tagging_ablation(
        scale=args.scale, seed=args.seed, executor=args.executor))
    console(format_series(
        {name: {"slowdown_naive": row["slowdown"],
                "naive_overflows": row["naive_overflows"]}
         for name, row in tagging.items()},
        "benchmark", "naive tagging cost",
        "Ablation: spec-tagging without escape analysis (§5.2.2)"))
    console()
    redo = _timed("undo-vs-redo", lambda: undo_vs_redo_ablation(
        scale=args.scale, seed=args.seed, executor=args.executor))
    console(format_series(
        {name: {key: value for key, value in row.items()
                if key.endswith("speedup")}
         for name, row in redo.items()},
        "benchmark", "redo/undo throughput",
        "Ablation: undo vs redo logging (writeback-dropping designs)"))


def _print_run_summary(result) -> None:
    console(repr(result))
    console(f"  throughput        : {result.throughput / 1e6:.3f} M FASEs/s")
    console(f"  committed/aborted : {result.fases_committed}/"
            f"{result.fases_aborted}")
    console(f"  misspeculations   : {result.load_misspeculations} load, "
            f"{result.store_misspeculations} store")
    for section in ("design", "spec_buffer", "pmc", "hierarchy"):
        stats = result.stats.get(section, {})
        if stats:
            rendered = ", ".join(f"{k}={v}" for k, v in
                                 sorted(stats.items())[:8])
            console(f"  {section:<18}: {rendered}")


def cmd_run(args) -> None:
    from .sweep import RunSpec
    spec = RunSpec(benchmark=args.benchmark, design=args.design,
                   n_threads=args.threads, seed=args.seed)
    result = _timed(
        f"{args.benchmark}/{args.design}",
        lambda: args.executor.run(spec)[0])
    if args.json:
        console(result.to_json())
        return
    _print_run_summary(result)


def _observed_spec(args):
    """The RunSpec the trace/metrics commands simulate (benchmark from
    the positional target, falling back to --benchmark)."""
    from .sweep import RunSpec
    benchmark = args.target or args.benchmark
    return RunSpec(benchmark=benchmark, design=args.design,
                   n_threads=args.threads, seed=args.seed)


def cmd_trace(args) -> None:
    """Run one spec with tracing on; write Chrome trace-event JSON."""
    from ..sim import (
        MetricsCollector,
        TraceRecorder,
        validate_trace_document,
    )
    from .sweep import execute_spec
    spec = _observed_spec(args)
    config = spec.resolved_config()
    tracer = TraceRecorder(cycle_ns=config.cycle_ns)
    metrics = MetricsCollector(window_cycles=args.metrics_window)
    out = args.trace_out or f"{spec.benchmark}-{spec.design}.trace.json"
    start = time.time()
    with run_context(run_id=f"trace/{spec.benchmark}",
                     spec_hash=spec.cache_key()[:12]):
        result = execute_spec(spec, tracer=tracer, metrics=metrics)
        log.info("%s done in %.1fs (%d trace events, %d dropped)",
                 spec.describe(), time.time() - start, len(tracer),
                 tracer.dropped)
    document = tracer.to_dict()
    problems = validate_trace_document(document)
    if problems:
        for problem in problems[:10]:
            log.error("trace schema: %s", problem)
        raise ValueError(f"trace failed schema check "
                         f"({len(problems)} problems)")
    tracer.save(out)
    console(f"trace written to {out} "
            f"({len(tracer)} events on {len(tracer.tracks)} tracks; "
            f"open in Perfetto / chrome://tracing)")
    console()
    _print_run_summary(result)
    if result.timeseries:
        console()
        console(format_timeseries(
            result.timeseries,
            f"Time series: {spec.benchmark}/{spec.design}"))


def cmd_profile(args) -> None:
    """Run one spec traced, attribute every simulated cycle to a
    component, and write collapsed stacks for flamegraph tools."""
    from ..obsv import get_bus, profile_run
    from ..sim import MetricsCollector, TraceRecorder
    from .sweep import execute_spec
    spec = _observed_spec(args)
    config = spec.resolved_config()
    tracer = TraceRecorder(cycle_ns=config.cycle_ns)
    metrics = MetricsCollector(window_cycles=args.metrics_window)
    start = time.time()
    with run_context(run_id=f"profile/{spec.benchmark}",
                     spec_hash=spec.cache_key()[:12]):
        result = execute_spec(spec, tracer=tracer, metrics=metrics)
        elapsed = time.time() - start
        log.info("%s done in %.1fs (%d trace events)", spec.describe(),
                 elapsed, len(tracer))
        bus = get_bus()
        if bus.enabled:
            series = (result.timeseries or {}).get("series", {})
            wpq = series.get("wpq_depth", {})
            bus.emit("spec_start", index=0, describe=spec.describe())
            bus.emit("spec_finish", index=0, describe=spec.describe(),
                     elapsed_s=elapsed, cache_hit=False, retried=False,
                     source="profile", cycles=result.cycles,
                     wpq_depth_means=[w.get("mean", 0.0)
                                      for w in wpq.get("windows", [])])
    profile = profile_run(tracer, result.cycles, wall_s=elapsed,
                          label=spec.describe())
    out = args.profile_out or f"{spec.benchmark}-{spec.design}.folded"
    profile.save_collapsed(out)
    console(profile.table())
    console()
    console(f"collapsed stacks written to {out} "
            f"(feed to flamegraph.pl / speedscope / inferno)")


def cmd_bench_history(args) -> None:
    """Trend report over a directory of BENCH_*.json payloads and
    *events*.jsonl event logs (CI artifact collections)."""
    from ..obsv import HistoryReport, collect_records
    root = args.target or "."
    report = HistoryReport(collect_records(root))
    console(report.render_terminal())
    if args.html:
        report.save_html(args.html)
        console(f"HTML trend report written to {args.html}")


def cmd_metrics(args) -> None:
    """Run one spec with windowed metrics; print series or sparklines."""
    from ..sim import MetricsCollector
    from .sweep import execute_spec
    spec = _observed_spec(args)
    metrics = MetricsCollector(window_cycles=args.metrics_window)
    start = time.time()
    with run_context(run_id=f"metrics/{spec.benchmark}",
                     spec_hash=spec.cache_key()[:12]):
        result = execute_spec(spec, metrics=metrics)
        log.info("%s done in %.1fs", spec.describe(), time.time() - start)
    if args.summary:
        console(format_timeseries(
            result.timeseries or {},
            f"Time series: {spec.benchmark}/{spec.design} "
            f"({spec.n_threads} cores)"))
    else:
        console(json.dumps(result.timeseries or {}, indent=2))


def cmd_validate(args) -> int:
    """Crash-consistency campaign over benchmarks x designs (exits 1 on
    any violation, so CI can gate on it)."""
    from ..validation import run_campaign
    from .report import format_campaign_table
    benchmarks = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    if args.litmus:
        from ..crashstates.litmus import format_litmus_table, run_litmus
        # The litmus tier covers every design (incl. StrandWeaver, which
        # the campaign default leaves out) unless --designs narrows it.
        explicit = args.designs != ",".join(DESIGNS)
        litmus = run_litmus(designs=designs if explicit else None)
        console(format_litmus_table(litmus))
        if args.report_out:
            with open(args.report_out, "w") as fh:
                json.dump(litmus, fh, indent=2, sort_keys=True)
            console(f"litmus report written to {args.report_out}")
        return 0 if litmus["ok"] else 1
    progress_log = get_logger("validation.progress")
    with run_context(run_id="validate"):
        report = run_campaign(
            benchmarks, designs,
            planner=args.planner, fault=args.fault, budget=args.budget,
            seed=args.seed, n_threads=args.val_threads,
            fases_per_thread=args.val_fases, log_mode=args.log_mode,
            shrink=args.shrink, executor=args.executor,
            progress=progress_log.info if args.progress else None,
            snapshot_dir=(args.snapshot_dir
                          if args.snapshot_every or args.snapshot_rungs
                          else None),
            snapshot_every=args.snapshot_every,
            snapshot_rungs=args.snapshot_rungs,
            batch=args.batch,
            crash_states=args.crash_states,
            image_budget=args.image_budget)
    console(format_campaign_table(
        report.rows(),
        f"Crash-consistency campaign: fault={args.fault} "
        f"planner={args.planner} budget={args.budget}/cell "
        f"seed={args.seed}"))
    console()
    status = "CONSISTENT" if report.consistent else (
        f"{report.total_failures} FAILING TRIALS "
        f"{report.violation_kinds()}")
    console(f"{report.total_trials} trials in {report.elapsed_s:.1f}s: "
            f"{status}")
    if report.crash_states is not None:
        cells = report.crash_states["cells"]
        images = sum(c.get("images_enumerated", 0) for c in cells)
        failed = sum(c.get("images_failed", 0) for c in cells)
        cs_status = ("CONSISTENT" if report.crash_states_ok
                     else f"{failed} FAILING IMAGES")
        console(f"crash states: {images} images over {len(cells)} cells "
                f"(budget {args.image_budget}/cycle): {cs_status}")
    console(f"seed={args.seed} report fingerprint "
            f"{report.fingerprint()[:16]}")
    if args.report_out:
        report.save(args.report_out)
        console(f"campaign report written to {args.report_out}")
    return 0 if report.consistent and report.crash_states_ok else 1


def cmd_snapshot(args) -> int:
    """Snapshot-ladder management: capture / inspect / verify.

    ``capture`` runs one cell's canonical laddered run and stores its
    rungs; ``inspect`` lists stored indexes (or one cell's rungs);
    ``verify`` replays every stored rung and checks each lands on the
    straight-line run's end fingerprint (exit 1 on any mismatch).
    """
    from ..snapshot import SnapshotStore
    from ..validation.campaign import (TrialSpec, _cell_index_name,
                                       snapshot_cell, verify_cell)
    action = args.target or "inspect"
    if action not in ("capture", "inspect", "verify"):
        raise ValueError(f"unknown snapshot action {action!r}; choose "
                         f"capture, inspect, or verify")
    if not args.snapshot_dir:
        raise ValueError("snapshot command needs --snapshot-dir")

    def cell_spec() -> TrialSpec:
        if not args.snapshot_every:
            raise ValueError(f"snapshot {action} needs --snapshot-every")
        return TrialSpec(
            workload=args.benchmark, design=args.design, fault=args.fault,
            n_threads=args.val_threads, fases_per_thread=args.val_fases,
            seed=args.seed, log_mode=args.log_mode,
            snapshot_every=args.snapshot_every,
            snapshot_dir=args.snapshot_dir)

    if action == "capture":
        spec = cell_spec()
        rungs = _timed("snapshot-capture", lambda: snapshot_cell(spec))
        console(f"captured {len(rungs)} rungs for {spec.describe()} "
                f"(index {_cell_index_name(spec)})")
        for rung in rungs:
            console(f"  rung {rung['rung']:>3} @ cycle {rung['cycle']:>8} "
                    f"fp {rung['fingerprint'][:16]}")
        return 0
    if action == "inspect":
        store = SnapshotStore(args.snapshot_dir)
        names = store.indexes()
        console(f"store {args.snapshot_dir}: {len(names)} indexes, "
                f"{store.total_bytes()} bytes")
        for name in names:
            rungs = store.load_index(name)
            cycles = [r["cycle"] for r in rungs]
            span = (f"cycles {min(cycles)}..{max(cycles)}"
                    if cycles else "empty")
            console(f"  {name}: {len(rungs)} rungs ({span})")
        return 0
    spec = cell_spec()
    outcome = _timed("snapshot-verify", lambda: verify_cell(spec))
    for check in outcome["checks"]:
        status = "ok" if check["fingerprint_ok"] else "MISMATCH"
        console(f"  rung {check['rung']:>3} @ cycle {check['cycle']:>8} "
                f"{status}")
    verdict = "deterministic" if outcome["ok"] else "NON-DETERMINISTIC"
    console(f"{spec.describe()}: {len(outcome['checks'])} rungs, {verdict}")
    return 0 if outcome["ok"] else 1


def _default_service_root() -> str:
    return os.path.join(tempfile.gettempdir(), "repro-service")


def cmd_serve(args) -> int:
    """Run the simulation service: durable job queue + HTTP/JSON API.

    Boots on ``--service-root`` (jobs journal + shared artifact
    tiers), recovers any jobs a previous process left unfinished, and
    serves until SIGINT/SIGTERM -- a signal interrupts the running job
    between tasks (journaled ``interrupted``, resumed on next start)
    and exits ``128 + signum``.
    """
    from ..service.api import run_service
    return run_service(
        root=args.service_root or _default_service_root(),
        host=args.host, port=args.port,
        workers=args.jobs if args.jobs > 0 else (os.cpu_count() or 1),
        task_timeout_s=args.task_timeout or None,
        ready_file=args.ready_file)


def _job_spec_from_args(args):
    """Build the JobSpec ``submit`` ships: a campaign over the
    validate-style grid, or a sweep over benchmarks x designs."""
    from ..service import JobSpec
    benchmarks = [b.strip() for b in args.benchmarks.split(",")
                  if b.strip()]
    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    if args.kind == "sweep":
        from .sweep import Sweep
        sweep = Sweep.grid(benchmarks, designs, n_threads=args.threads,
                           seeds=args.seed, name="submit")
        return JobSpec.sweep(sweep, name=args.job_name)
    return JobSpec.campaign(
        benchmarks, designs, planner=args.planner, fault=args.fault,
        budget=args.budget, seed=args.seed, n_threads=args.val_threads,
        fases_per_thread=args.val_fases, log_mode=args.log_mode,
        shrink=False, snapshot_rungs=args.snapshot_rungs or 16,
        batch=args.batch or 10, name=args.job_name)


def cmd_submit(args) -> int:
    """Submit a job to a running service and (optionally) wait."""
    from ..service import ServiceClient
    client = ServiceClient(args.url)
    spec = _job_spec_from_args(args)
    record = client.submit(spec, force=args.force)
    console(json.dumps({"job_id": record["job_id"],
                        "state": record["state"]}))
    if args.follow:
        for event in client.events(record["job_id"]):
            console(json.dumps(event, sort_keys=True))
    if args.wait or args.follow:
        final = client.wait(record["job_id"], timeout_s=args.wait_s)
        console(json.dumps(final, sort_keys=True, indent=2))
        return 0 if final["state"] == "done" else 1
    return 0


def cmd_status(args) -> int:
    """Show a running service's jobs (or one job; --follow streams)."""
    from ..service import ServiceClient
    client = ServiceClient(args.url)
    if not args.target:
        health = client.health()
        console(f"service ok: uptime {health['uptime_s']:.0f}s, "
                f"current={health['current_job'] or '-'}, "
                f"states={json.dumps(health['jobs'], sort_keys=True)}")
        for record in client.jobs():
            console(f"  {record['job_id']}  {record['state']:<12}"
                    f"{record['spec']['kind']:<9}"
                    f"{record['spec'].get('name', '')}")
        return 0
    if args.follow:
        for event in client.events(args.target):
            console(json.dumps(event, sort_keys=True))
    record = client.job(args.target)
    console(json.dumps(record, sort_keys=True, indent=2))
    return 0


def cmd_all(args) -> None:
    cmd_table3(args)
    console()
    cmd_fig9(args)
    console()
    cmd_fig10(args)
    console()
    cmd_fig11(args)
    console()
    cmd_fig12(args)
    console()
    cmd_misspec(args)
    console()
    cmd_ablations(args)


COMMANDS = {
    "table3": cmd_table3,
    "fig2": cmd_fig2,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "fig12": cmd_fig12,
    "misspec": cmd_misspec,
    "ablations": cmd_ablations,
    "run": cmd_run,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "profile": cmd_profile,
    "bench-history": cmd_bench_history,
    "snapshot": cmd_snapshot,
    "validate": cmd_validate,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "status": cmd_status,
    "all": cmd_all,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the PMEM-Spec paper's tables and figures.")
    parser.add_argument("experiment", choices=sorted(COMMANDS))
    parser.add_argument("target", nargs="?", default=None,
                        help="benchmark name (trace/metrics/profile "
                             "commands) or artifact directory "
                             "(bench-history)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="FASE-count multiplier (default 1.0)")
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--cores", default="16,32,64",
                        help="core counts for fig10")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--benchmark", default="tpcc",
                        help="benchmark for the `run` command")
    parser.add_argument("--design", default="PMEM-Spec",
                        help="design for the `run`/`trace`/`metrics` "
                             "commands")
    parser.add_argument("--json", action="store_true",
                        help="emit JSON (run command)")
    parser.add_argument("--save", default=None, metavar="DIR",
                        help="also write the experiment's data as JSON")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the experiment grid "
                             "(0 = all cores; default 1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-spec result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-cache directory (default: "
                             "<tmpdir>/repro-harness-cache)")
    parser.add_argument("--progress", action="store_true",
                        help="log one line per completed grid cell")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="trace command: output path for the Chrome "
                             "trace-event JSON")
    parser.add_argument("--events-out", default=None, metavar="FILE",
                        help="write the run's lifecycle events as "
                             "JSON-Lines (any command)")
    parser.add_argument("--prom-out", default=None, metavar="FILE",
                        help="write live aggregate metrics as a "
                             "Prometheus textfile (any command)")
    parser.add_argument("--profile-out", default=None, metavar="FILE",
                        help="profile command: collapsed-stack output "
                             "path (default <benchmark>-<design>.folded)")
    parser.add_argument("--html", default=None, metavar="FILE",
                        help="bench-history command: also write an HTML "
                             "trend report")
    parser.add_argument("--metrics-window", type=int, default=10_000,
                        metavar="CYCLES",
                        help="aggregation window for time-series metrics "
                             "(default 10000 cycles)")
    parser.add_argument("--summary", action="store_true",
                        help="metrics command: sparkline summary instead "
                             "of JSON")
    from ..validation.faults import FAULT_NAMES
    from ..validation.planners import PLANNER_NAMES
    parser.add_argument("--planner", default="stratified",
                        choices=PLANNER_NAMES,
                        help="validate command: crash-cycle planner")
    parser.add_argument("--fault", default="power-cut",
                        choices=FAULT_NAMES,
                        help="validate command: fault model to inject")
    parser.add_argument("--budget", type=int, default=200,
                        help="validate command: trial budget per "
                             "workload x design cell (default 200)")
    parser.add_argument("--shrink", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="validate command: shrink failing crash "
                             "cycles to a minimal reproducer")
    parser.add_argument("--benchmarks",
                        default="array_swaps,queue,hashmap,rbtree",
                        help="validate command: comma-separated benchmark "
                             "list")
    parser.add_argument("--designs", default=",".join(DESIGNS),
                        help="validate command: comma-separated design "
                             "list (default: all)")
    parser.add_argument("--val-threads", type=int, default=2,
                        help="validate command: threads per trial "
                             "(default 2)")
    parser.add_argument("--val-fases", type=int, default=10,
                        help="validate command: FASEs per thread per "
                             "trial (default 10)")
    parser.add_argument("--log-mode", default="undo",
                        choices=("undo", "redo"),
                        help="validate command: logging flavor under test")
    parser.add_argument("--report-out", default=None, metavar="FILE",
                        help="validate command: write the CampaignReport "
                             "JSON artifact here")
    parser.add_argument("--snapshot-dir", default=None, metavar="DIR",
                        help="snapshot/validate commands: rung-snapshot "
                             "store directory")
    parser.add_argument("--snapshot-every", type=int, default=0,
                        metavar="K",
                        help="snapshot ladder interval in persist events "
                             "(0 = off; validate restores trials from "
                             "the nearest rung when on)")
    parser.add_argument("--snapshot-rungs", type=int, default=0,
                        metavar="N",
                        help="validate command: size each cell's ladder "
                             "to ~N rungs from a probe run instead of a "
                             "fixed --snapshot-every interval")
    parser.add_argument("--crash-states", action="store_true",
                        help="validate command: after the trial campaign, "
                             "enumerate every durable state each design's "
                             "persistency model allows at sampled crash "
                             "cycles and prove recovery converges from "
                             "all of them")
    parser.add_argument("--litmus", action="store_true",
                        help="validate command: run only the hand-written "
                             "crash-state litmus tier (seconds, no "
                             "campaign) and exit 1 on any mismatch")
    parser.add_argument("--image-budget", type=int, default=64,
                        metavar="N",
                        help="validate command: durable-state images "
                             "enumerated per crash cycle before falling "
                             "back to seeded stratified sampling "
                             "(default 64)")
    parser.add_argument("--batch", type=int, default=0, metavar="N",
                        help="validate command: cell-affine batched "
                             "execution -- ship up to N trials per "
                             "(cell, chunk) task and serve them from a "
                             "resident warm system per worker (0 = "
                             "trial-at-a-time; outcomes are identical "
                             "either way)")
    parser.add_argument("--service-root", default=None, metavar="DIR",
                        help="serve command: durable job store "
                             "directory (default <tmpdir>/repro-"
                             "service)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="serve command: bind address")
    parser.add_argument("--port", type=int, default=8642,
                        help="serve command: bind port (0 = kernel-"
                             "assigned; see --ready-file)")
    parser.add_argument("--ready-file", default=None, metavar="FILE",
                        help="serve command: write 'host port' here "
                             "once the socket is bound")
    parser.add_argument("--task-timeout", type=float, default=0.0,
                        metavar="S",
                        help="serve command: per-task wall-clock "
                             "timeout (0 = none; hung workers are "
                             "killed and the task retried)")
    parser.add_argument("--url", default="http://127.0.0.1:8642",
                        help="submit/status commands: service base URL")
    parser.add_argument("--kind", default="campaign",
                        choices=("campaign", "sweep"),
                        help="submit command: job kind (campaign uses "
                             "the validate-style options, sweep a "
                             "benchmarks x designs RunSpec grid)")
    parser.add_argument("--job-name", default="", metavar="NAME",
                        help="submit command: display tag (not part "
                             "of the job id)")
    parser.add_argument("--force", action="store_true",
                        help="submit command: re-queue the job even "
                             "if an identical one already finished")
    parser.add_argument("--wait", action="store_true",
                        help="submit command: poll until the job is "
                             "terminal (exit 1 unless it is done)")
    parser.add_argument("--wait-s", type=float, default=3600.0,
                        metavar="S",
                        help="submit command: --wait timeout")
    parser.add_argument("--follow", action="store_true",
                        help="submit/status commands: stream the "
                             "job's NDJSON events to stdout")
    parser.add_argument("--log-level", default="info",
                        choices=("debug", "info", "warning", "error"),
                        help="diagnostic verbosity on stderr")
    args = parser.parse_args(argv)
    configure_logging(getattr(logging, args.log_level.upper()))
    from .sweep import ParallelExecutor
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir or os.path.join(
            tempfile.gettempdir(), "repro-harness-cache")
    progress_log = get_logger("harness.progress")
    args.executor = ParallelExecutor(
        jobs=args.jobs if args.jobs > 0 else None,
        cache_dir=cache_dir,
        progress=progress_log.info if args.progress else None)

    # Observability: --events-out / --prom-out install an event bus as
    # the process-current bus for the duration of the command, so the
    # executor, the campaign engine, and the snapshot manager all
    # publish to it without any of them knowing about the CLI.
    bus = sink = exporter = None
    if args.events_out or args.prom_out:
        from ..obsv import (EventBus, JsonlSink, MetricsRegistry,
                            TextfileExporter, bus_scope)
        bus = EventBus()
        if args.events_out:
            sink = JsonlSink(args.events_out)
            bus.subscribe(sink)
        if args.prom_out:
            registry = MetricsRegistry()
            bus.registry = registry
            bus.subscribe(registry.observe_event)
            exporter = TextfileExporter(registry, args.prom_out)
            bus.subscribe(exporter.on_event)
    scope = (bus_scope(bus) if bus is not None
             else contextlib.nullcontext())
    previous_handlers = _install_signal_handlers()
    try:
        with scope:
            status = COMMANDS[args.experiment](args)
    except ValueError as exc:
        # Bad spec inputs (unknown design/benchmark, config mismatch)
        # are user errors, not crashes.
        log.error("%s", exc)
        return 2
    except _Interrupted as exc:
        # Graceful stop: no traceback, partial artifacts flushed by
        # the finally below, conventional 128+signum exit code.
        log.warning("interrupted by %s; flushing partial artifacts "
                    "and event log", exc)
        if bus is not None:
            bus.emit("interrupted", signal_name=str(exc),
                     command=args.experiment)
        return 128 + exc.signum
    finally:
        _restore_signal_handlers(previous_handlers)
        if exporter is not None:
            exporter.write()
            log.info("metrics exposition written to %s", args.prom_out)
        if sink is not None:
            sink.close()
            log.info("%d events written to %s", sink.written,
                     args.events_out)
    return status or 0


if __name__ == "__main__":
    sys.exit(main())
