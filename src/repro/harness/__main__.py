"""CLI: regenerate any of the paper's tables and figures.

Usage::

    python -m repro.harness table3
    python -m repro.harness fig9  [--scale 1.0] [--threads 8] [--jobs 4]
    python -m repro.harness fig10 [--scale 0.5] [--cores 16,32,64]
    python -m repro.harness fig11 [--scale 1.0]
    python -m repro.harness fig12 [--scale 1.0]
    python -m repro.harness misspec
    python -m repro.harness ablations
    python -m repro.harness all   [--scale 0.5] [--jobs 0]

``--jobs N`` fans the experiment grid out over N worker processes
(``0`` = all cores).  Results are cached per grid cell (keyed by a
content hash of the resolved run spec) so re-running an unchanged
figure is free; ``--no-cache`` disables the cache and ``--cache-dir``
relocates it.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

from .configs import DESIGNS, format_table3
from .experiments import (
    figure2_annotation_burden,
    figure9,
    figure10,
    figure10_summary,
    figure11,
    figure12,
    lazy_vs_eager_recovery,
    misspeculation_rates,
    naive_tagging_ablation,
    undo_vs_redo_ablation,
)
from .report import (
    format_bar_chart,
    format_misspec_table,
    format_normalized_table,
    format_series,
)


def _maybe_save(args, name, payload):
    if getattr(args, "save", None):
        from .artifacts import save_artifact
        path = save_artifact(args.save, name, payload,
                             meta={"scale": args.scale, "seed": args.seed})
        print(f"[saved {path}]")


def _timed(label, fn):
    start = time.time()
    result = fn()
    print(f"[{label} done in {time.time() - start:.1f}s]\n")
    return result


def cmd_table3(args) -> None:
    print(format_table3())


def cmd_fig9(args) -> None:
    rows = _timed("fig9", lambda: figure9(n_threads=args.threads,
                                          scale=args.scale, seed=args.seed,
                                          executor=args.executor))
    _maybe_save(args, "fig9", rows)
    print(format_normalized_table(
        rows, DESIGNS,
        f"Figure 9: throughput normalised to IntelX86 "
        f"({args.threads}-core system)"))
    from ..sim import geomean
    print()
    print(format_bar_chart(
        {design: geomean([rows[b][design] for b in rows])
         for design in DESIGNS},
        "Figure 9 geomean (|= baseline)", reference=1.0))


def cmd_fig10(args) -> None:
    cores = [int(c) for c in args.cores.split(",")]
    results = _timed("fig10", lambda: figure10(core_counts=cores,
                                               scale=args.scale,
                                               seed=args.seed,
                                               executor=args.executor))
    _maybe_save(args, "fig10", results)
    for count, rows in results.items():
        print(format_normalized_table(
            rows, DESIGNS,
            f"Figure 10: normalised throughput ({count}-core system)"))
        print()
    summary = figure10_summary(results)
    print(format_series(summary, "cores", "geomean vs IntelX86",
                        "Figure 10 summary (geomean per design)"))


def cmd_fig11(args) -> None:
    series = _timed("fig11", lambda: figure11(scale=args.scale,
                                              seed=args.seed,
                                              executor=args.executor))
    _maybe_save(args, "fig11", series)
    print(format_series(
        series, "buffer entries", "throughput vs 16-entry",
        "Figure 11: speculation-buffer size sensitivity (8 cores)"))


def cmd_fig12(args) -> None:
    series = _timed("fig12", lambda: figure12(scale=args.scale,
                                              seed=args.seed,
                                              executor=args.executor))
    _maybe_save(args, "fig12", series)
    print(format_series(
        series, "persist-path ns", "geomean vs IntelX86",
        "Figure 12: persist-path latency sensitivity"))


def cmd_misspec(args) -> None:
    rows = _timed("misspec", lambda: misspeculation_rates(
        scale=args.scale, seed=args.seed, executor=args.executor))
    _maybe_save(args, "misspec", {"rows": rows})
    print(format_misspec_table(
        rows, "Section 8.4: misspeculation rates under PMEM-Spec"))


def cmd_fig2(args) -> None:
    rows = _timed("fig2", figure2_annotation_burden)
    print(format_series(
        rows, "benchmark", "annotations/FASE per flavor",
        "Figure 2 quantified: programmer-visible ordering annotations"))


def cmd_ablations(args) -> None:
    recovery = _timed("lazy-vs-eager",
                      lambda: lazy_vs_eager_recovery(scale=args.scale,
                                                     seed=args.seed,
                                                     executor=args.executor))
    print(format_series(recovery, "recovery mode", "outcome",
                        "Ablation: lazy vs eager recovery (§6.2)"))
    print()
    tagging = _timed("tagging", lambda: naive_tagging_ablation(
        scale=args.scale, seed=args.seed, executor=args.executor))
    print(format_series(
        {name: {"slowdown_naive": row["slowdown"],
                "naive_overflows": row["naive_overflows"]}
         for name, row in tagging.items()},
        "benchmark", "naive tagging cost",
        "Ablation: spec-tagging without escape analysis (§5.2.2)"))
    print()
    redo = _timed("undo-vs-redo", lambda: undo_vs_redo_ablation(
        scale=args.scale, seed=args.seed, executor=args.executor))
    print(format_series(
        {name: {key: value for key, value in row.items()
                if key.endswith("speedup")}
         for name, row in redo.items()},
        "benchmark", "redo/undo throughput",
        "Ablation: undo vs redo logging (writeback-dropping designs)"))


def cmd_run(args) -> None:
    from .sweep import RunSpec
    spec = RunSpec(benchmark=args.benchmark, design=args.design,
                   n_threads=args.threads, seed=args.seed)
    result = _timed(
        f"{args.benchmark}/{args.design}",
        lambda: args.executor.run(spec)[0])
    if args.json:
        print(result.to_json())
        return
    print(result)
    print(f"  throughput        : {result.throughput / 1e6:.3f} M FASEs/s")
    print(f"  committed/aborted : {result.fases_committed}/"
          f"{result.fases_aborted}")
    print(f"  misspeculations   : {result.load_misspeculations} load, "
          f"{result.store_misspeculations} store")
    for section in ("design", "spec_buffer", "pmc", "hierarchy"):
        stats = result.stats.get(section, {})
        if stats:
            rendered = ", ".join(f"{k}={v}" for k, v in
                                 sorted(stats.items())[:8])
            print(f"  {section:<18}: {rendered}")


def cmd_all(args) -> None:
    cmd_table3(args)
    print()
    cmd_fig9(args)
    print()
    cmd_fig10(args)
    print()
    cmd_fig11(args)
    print()
    cmd_fig12(args)
    print()
    cmd_misspec(args)
    print()
    cmd_ablations(args)


COMMANDS = {
    "table3": cmd_table3,
    "fig2": cmd_fig2,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "fig12": cmd_fig12,
    "misspec": cmd_misspec,
    "ablations": cmd_ablations,
    "run": cmd_run,
    "all": cmd_all,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the PMEM-Spec paper's tables and figures.")
    parser.add_argument("experiment", choices=sorted(COMMANDS))
    parser.add_argument("--scale", type=float, default=1.0,
                        help="FASE-count multiplier (default 1.0)")
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--cores", default="16,32,64",
                        help="core counts for fig10")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--benchmark", default="tpcc",
                        help="benchmark for the `run` command")
    parser.add_argument("--design", default="PMEM-Spec",
                        help="design for the `run` command")
    parser.add_argument("--json", action="store_true",
                        help="emit JSON (run command)")
    parser.add_argument("--save", default=None, metavar="DIR",
                        help="also write the experiment's data as JSON")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the experiment grid "
                             "(0 = all cores; default 1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-spec result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-cache directory (default: "
                             "<tmpdir>/repro-harness-cache)")
    parser.add_argument("--progress", action="store_true",
                        help="print one line per completed grid cell")
    args = parser.parse_args(argv)
    from .sweep import ParallelExecutor
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir or os.path.join(
            tempfile.gettempdir(), "repro-harness-cache")
    args.executor = ParallelExecutor(
        jobs=args.jobs if args.jobs > 0 else None,
        cache_dir=cache_dir,
        progress=(lambda line: print(line, file=sys.stderr))
        if args.progress else None)
    try:
        COMMANDS[args.experiment](args)
    except ValueError as exc:
        # Bad spec inputs (unknown design/benchmark, config mismatch)
        # are user errors, not crashes.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
