"""Experiment configurations and the Table 3 pretty-printer."""

from __future__ import annotations

from typing import List, Tuple

from ..config import SystemConfig, table3_config

DESIGNS = ("IntelX86", "DPO", "HOPS", "PMEM-Spec")
BASELINE = "IntelX86"

# Table 4 order (the order Figures 9 and 10 use).
BENCHMARK_ORDER = ("array_swaps", "queue", "hashmap", "rbtree",
                   "tatp", "tpcc", "vacation", "memcached")


def table3_rows(config: SystemConfig = None) -> List[Tuple[str, str]]:
    """The paper's Table 3 as (component, description) rows."""
    cfg = config or table3_config()
    return [
        ("Core", f"{cfg.freq_ghz:.0f}GHz, {cfg.issue_width}way-OoO"),
        ("", f"{cfg.rob_entries}-entry ROB"),
        ("", f"{cfg.store_queue_entries}-entry Ld/St Queue"),
        ("L1 I/D Cache", f"32/{cfg.l1_size_bytes // 1024}KB, "
                         f"{cfg.l1_ways}-way, private"),
        ("", f"{cfg.l1_hit_ns:.0f}ns hit latency"),
        ("L2 Cache", f"{cfg.l2_size_bytes // (1024 * 1024)}MB, "
                     f"{cfg.l2_ways}-way, shared"),
        ("", f"{cfg.l2_hit_ns:.0f}ns hit latency"),
        ("PM Controller", f"{cfg.pmc_read_queue}/{cfg.pmc_write_queue}-entry "
                          f"read/write queue"),
        ("", f"{cfg.spec_buffer_entries}-entry speculation buffer"),
        ("PM", f"Read = {cfg.pm_read_ns:.0f}ns/"
               f"Write = {cfg.pm_write_ns:.0f}ns"),
        ("Persist-Path", f"{cfg.persist_path_ns:.0f}ns"),
    ]


def format_table3(config: SystemConfig = None) -> str:
    rows = table3_rows(config)
    width = max(len(name) for name, _ in rows)
    lines = ["Table 3: Simulator configuration", "-" * 44]
    for name, description in rows:
        lines.append(f"{name:<{width}}  {description}")
    return "\n".join(lines)


def default_config(n_cores: int = 8, **overrides) -> SystemConfig:
    """The main-experiment configuration (Table 3 with n_cores cores)."""
    return table3_config(n_cores=n_cores, **overrides)
