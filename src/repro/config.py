"""System configuration (the paper's Table 3).

All latencies are stored in nanoseconds exactly as the paper gives them
and converted to integer core cycles (2 GHz => 2 cycles per ns) via
:meth:`SystemConfig.ns`.  One simulated time unit everywhere in this
repository is one core cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional


@dataclass
class SystemConfig:
    """Table 3 of the paper, plus reproduction-specific knobs."""

    # Core
    n_cores: int = 8
    freq_ghz: float = 2.0
    rob_entries: int = 192          # informational; cores batch compute
    store_queue_entries: int = 32
    issue_width: int = 8
    mlp_misses: int = 8             # outstanding PM-miss loads per core

    # L1 data cache (per core)
    l1_size_bytes: int = 64 * 1024
    l1_ways: int = 4
    l1_hit_ns: float = 2.0

    # L2 / LLC (shared)
    l2_size_bytes: int = 16 * 1024 * 1024
    l2_ways: int = 16
    l2_hit_ns: float = 20.0

    # PM controller
    pmc_read_queue: int = 32
    pmc_write_queue: int = 64
    pmc_banks: int = 16             # device read lanes (~23 GB/s)
    pmc_write_banks: int = 8        # device write lanes (~10 GB/s)
    spec_buffer_entries: int = 4
    n_pm_controllers: int = 1       # §7: >1 exposes the ordering hazard
    ordered_noc: bool = False       # §7 future-work fix: order-preserving NoC

    # PM device (measured Optane latencies)
    pm_read_ns: float = 175.0
    pm_write_ns: float = 94.0

    # Paths
    persist_path_ns: float = 20.0   # idle store-queue -> PMC latency
    persist_path_lanes: int = 4     # concurrent ring-bus message slots
    l1_to_pmc_ns: float = 11.0      # regular-path flush traversal
    ring_slot_ns: float = 0.5       # per-message ring-bus occupancy

    # Speculation window override (None = the §8.1 rule:
    # n_cores x idle persist-path latency).  §5.1.2 requires the window
    # to cover the worst-case persist-path latency; setting it shorter
    # makes detection unsound -- an ablation the tests demonstrate.
    spec_window_ns: Optional[float] = None

    # Locks (futex round trip between threads)
    lock_handoff_ns: float = 10.0

    # Reproduction-specific extras
    hops_bloom_lookup_ns: float = 2.0     # §8.2.2: PMC bloom check per load
    hops_bloom_bits: int = 2048
    hops_bloom_hashes: int = 2
    hops_persist_buffer_entries: int = 32
    hops_sticky_bus_extra_ns: float = 0.5  # extra L1<->L2 bit (§8.2.2)
    dpo_persist_buffer_entries: int = 32

    extra: Dict[str, float] = field(default_factory=dict)

    def ns(self, nanoseconds: float) -> int:
        """Convert nanoseconds to (integer, >=0) core cycles."""
        cycles = round(nanoseconds * self.freq_ghz)
        return max(0, int(cycles))

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.freq_ghz

    @property
    def speculation_window_cycles(self) -> int:
        """§8.1: ring-connected persist paths give a speculative period of
        ``n_cores x idle persist-path latency`` (160 ns for 8 cores),
        unless explicitly overridden via ``spec_window_ns``."""
        if self.spec_window_ns is not None:
            return max(1, self.ns(self.spec_window_ns))
        return self.ns(self.n_cores * self.persist_path_ns)

    @property
    def l1_sets(self) -> int:
        return self.l1_size_bytes // (64 * self.l1_ways)

    @property
    def l2_sets(self) -> int:
        return self.l2_size_bytes // (64 * self.l2_ways)

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """A copy with the given fields replaced (sweeps use this)."""
        return replace(self, **kwargs)

    def validate(self) -> None:
        if self.n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        if self.l1_sets < 1 or self.l2_sets < 1:
            raise ValueError("cache too small for its associativity")
        if self.spec_buffer_entries < 1:
            raise ValueError("spec_buffer_entries must be >= 1")
        if self.pm_read_ns <= 0 or self.pm_write_ns <= 0:
            raise ValueError("PM latencies must be positive")
        if self.n_pm_controllers < 1:
            raise ValueError("n_pm_controllers must be >= 1")


def table3_config(**overrides) -> SystemConfig:
    """The exact configuration of the paper's Table 3."""
    config = SystemConfig().with_overrides(**overrides)
    config.validate()
    return config
