"""Persistent-memory device model.

The device holds the *persisted image*: the byte values that would
survive a power failure right now.  The architectural (volatile) image
lives in :class:`repro.mem.hierarchy.MemoryImage`; crash-consistency
tests diff the two.

Following the paper's ADR assumption (§8.1), data is durable as soon as
it is *accepted at the PM controller*, so the controller calls
:meth:`persist_store` / :meth:`persist_block` at message-arrival time
and the device merely records content plus a persist history for
offline inspection.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..isa import CACHE_BLOCK_BYTES, block_base


class PMDevice:
    """Byte-addressable persistent memory with a persisted-value image."""

    __slots__ = ("_image", "_blocks", "record_history", "history",
                 "stores_persisted", "blocks_persisted", "on_persist")

    def __init__(self, initial_image: Optional[Dict[int, int]] = None,
                 record_history: bool = False):
        self._image: Dict[int, int] = dict(initial_image or {})
        # Per-block view of the same image, so block_content is O(words
        # in block) instead of an O(image) scan per PM read.  Both maps
        # receive every write in the same order, so a block's insertion
        # order here matches a block-filtered scan of ``_image`` exactly
        # (the image only ever grows) -- keeping replay and snapshot
        # encodings byte-identical with the single-map implementation.
        self._blocks: Dict[int, Dict[int, int]] = {}
        for addr, value in self._image.items():
            block = addr // CACHE_BLOCK_BYTES
            bucket = self._blocks.get(block)
            if bucket is None:
                self._blocks[block] = {addr: value}
            else:
                bucket[addr] = value
        self.record_history = record_history
        # (time, addr, value, origin) tuples, origin in
        # {"persist-path", "writeback", "recovery"}.
        self.history: List[Tuple[int, int, int, str]] = []
        self.stores_persisted = 0
        self.blocks_persisted = 0
        # Snapshot-ladder hook: fired once per persist_store/persist_block
        # call.  The device is the one durability point every design
        # funnels through (ADR acceptance for the x86 paths, buffer drain
        # for DPO/HOPS), so it is where persist events are counted.
        self.on_persist = None

    def read(self, addr: int) -> int:
        """Persisted value at ``addr`` (0 if never written)."""
        return self._image.get(addr, 0)

    def block_content(self, block: int) -> Dict[int, int]:
        """All persisted values inside cache block number ``block``
        (a fresh dict -- callers may mutate it)."""
        bucket = self._blocks.get(block)
        return dict(bucket) if bucket else {}

    def persist_store(self, addr: int, value: int, now: int,
                      origin: str = "persist-path") -> None:
        """Persist one store (persist-path message accepted at the PMC)."""
        self._image[addr] = value
        bucket = self._blocks.get(addr // CACHE_BLOCK_BYTES)
        if bucket is None:
            self._blocks[addr // CACHE_BLOCK_BYTES] = {addr: value}
        else:
            bucket[addr] = value
        self.stores_persisted += 1
        if self.record_history:
            self.history.append((now, addr, value, origin))
        if self.on_persist is not None:
            self.on_persist()

    def persist_block(self, addr: int, data: Dict[int, int], now: int,
                      origin: str = "writeback") -> None:
        """Persist a whole cache block (CLWB / LLC writeback accepted)."""
        base = block_base(addr)
        block = base // CACHE_BLOCK_BYTES
        bucket = self._blocks.get(block)
        if bucket is None:
            bucket = self._blocks[block] = {}
        image = self._image
        for byte_addr, value in data.items():
            if not base <= byte_addr < base + CACHE_BLOCK_BYTES:
                raise ValueError(
                    f"block persist at 0x{base:x} carries out-of-block "
                    f"address 0x{byte_addr:x}")
            image[byte_addr] = value
            bucket[byte_addr] = value
            if self.record_history:
                self.history.append((now, byte_addr, value, origin))
        self.blocks_persisted += 1
        if self.on_persist is not None:
            self.on_persist()

    def snapshot(self) -> Dict[int, int]:
        """Copy of the full persisted image (crash-test capture)."""
        return dict(self._image)

    def addresses(self) -> Iterator[int]:
        return iter(self._image)

    def __len__(self) -> int:
        return len(self._image)

    def capture_state(self) -> dict:
        return {"image": list(self._image.items()),
                "history": [list(entry) for entry in self.history],
                "stores_persisted": self.stores_persisted,
                "blocks_persisted": self.blocks_persisted}

    def restore_state(self, state: dict) -> None:
        self._image = {addr: value for addr, value in state["image"]}
        self._blocks = {}
        for addr, value in self._image.items():
            block = addr // CACHE_BLOCK_BYTES
            bucket = self._blocks.get(block)
            if bucket is None:
                self._blocks[block] = {addr: value}
            else:
                bucket[addr] = value
        self.history = [tuple(entry) for entry in state["history"]]
        self.stores_persisted = state["stores_persisted"]
        self.blocks_persisted = state["blocks_persisted"]
