"""The cache hierarchy: per-core L1 data caches over a shared, inclusive
LLC, with MESI-lite coherence and write-back/write-allocate policy.

Timing conventions
------------------
* **Loads** return a :class:`LoadResult`; cache hits are fully
  synchronous (``result.event is None``), LLC misses hand back an event
  that fires when the PM controller's read completes.  The value a PM
  miss returns is the *persisted* content at arrival time -- this is how
  stale reads (PM load misspeculation, §5.1) manifest.
* **Stores** are computed synchronously: state is mutated immediately
  and a completion time is returned; the store queue in
  :mod:`repro.cpu.store_queue` turns that into back-pressure.  Automaton
  inputs (PM reads for write-allocate fetches) are still delivered to
  the PMC policy at their arrival times, in global time order.
* **Evictions** of dirty LLC lines travel the flush path to the PMC; the
  active design's policy decides whether the data persists (baselines)
  or is dropped with only monitoring started (PMEM-Spec, §4.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import SystemConfig
from ..isa import block_of
from ..sim import Counter, Environment, Event
from .cache import EXCLUSIVE, MODIFIED, SHARED, Cache, EvictedLine
from .interconnect import FlushPath
from .pm_controller import PMController


class MemoryImage:
    """Architectural (volatile-visible) values: what a race-free reader
    should observe.  Diffed against the PM device image by stale-read
    accounting and crash tests."""

    def __init__(self, initial: Optional[Dict[int, int]] = None):
        self._values: Dict[int, int] = dict(initial or {})

    def read(self, addr: int) -> int:
        return self._values.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self._values[addr] = value

    def snapshot(self) -> Dict[int, int]:
        return dict(self._values)

    def capture_state(self) -> dict:
        return {"values": list(self._values.items())}

    def restore_state(self, state: dict) -> None:
        self._values = {addr: value for addr, value in state["values"]}


class LoadResult:
    """Outcome of a load: synchronous (value/done) or event-completed."""

    __slots__ = ("value", "done", "event", "level", "stale")

    def __init__(self, value: Optional[int] = None, done: int = 0,
                 event: Optional[Event] = None, level: str = "l1",
                 stale: bool = False):
        self.value = value
        self.done = done
        self.event = event
        self.level = level
        self.stale = stale


class CacheHierarchy:
    """L1s + shared LLC + coherence + the flush path to the PMC."""

    def __init__(self, env: Environment, config: SystemConfig,
                 pmc: PMController, image: MemoryImage,
                 bus_extra_cycles: int = 0):
        self.env = env
        self.config = config
        self.pmc = pmc
        self.image = image
        self.flush_path = FlushPath(config)
        self.l1_lat = config.ns(config.l1_hit_ns)
        self.l2_lat = config.ns(config.l2_hit_ns) + bus_extra_cycles
        self.l1s: List[Cache] = [
            Cache(f"l1[{i}]", config.l1_sets, config.l1_ways)
            for i in range(config.n_cores)]
        self.llc = Cache("llc", config.l2_sets, config.l2_ways)
        # Sharer directory: block -> set of core ids whose L1 holds it.
        # Pure bookkeeping (states still live in the lines); it keeps
        # coherence lookups O(sharers) instead of O(n_cores), which is
        # what makes 64-core runs tractable.
        self._sharers: Dict[int, set] = {}
        self.stats = Counter()

    # ---------------------------------------------------------- snapshotting

    def capture_state(self) -> dict:
        # Sharer sets hold small core ids; capture sorted for a stable
        # encoding (value-ordered iteration matches CPython's small-int
        # set order on restore, so replay is unaffected).
        return {"l1s": [l1.capture_state() for l1 in self.l1s],
                "llc": self.llc.capture_state(),
                "sharers": [(block, sorted(cores))
                            for block, cores in self._sharers.items()],
                "flush_path": self.flush_path.capture_state(),
                "image": self.image.capture_state(),
                "stats": self.stats.capture_state()}

    def restore_state(self, state: dict) -> None:
        for l1, l1_state in zip(self.l1s, state["l1s"]):
            l1.restore_state(l1_state)
        self.llc.restore_state(state["llc"])
        self._sharers = {block: set(cores)
                         for block, cores in state["sharers"]}
        self.flush_path.restore_state(state["flush_path"])
        self.image.restore_state(state["image"])
        self.stats.restore_state(state["stats"])

    # ------------------------------------------------------------ coherence

    def _sharer_add(self, core_id: int, block: int) -> None:
        self._sharers.setdefault(block, set()).add(core_id)

    def _sharer_drop(self, core_id: int, block: int) -> None:
        sharers = self._sharers.get(block)
        if sharers is not None:
            sharers.discard(core_id)
            if not sharers:
                del self._sharers[block]

    def _other_modified_owner(self, core_id: int,
                              block: int) -> Optional[int]:
        for owner in self._sharers.get(block, ()):
            if owner == core_id:
                continue
            line = self.l1s[owner].lookup(block, touch=False)
            if line is not None and line.state == MODIFIED:
                return owner
        return None

    def _snoop_downgrade_peers(self, core_id: int, block: int) -> bool:
        """A read snoop reached ``block``: every other L1 copy must drop
        to SHARED, or its owner's next store would take the silent
        exclusive-hit path and skip invalidating the new reader.  Only
        call after the MODIFIED-owner (c2c) case has been handled, so
        peers here are E or S and no dirty data can be lost.  Returns
        True when any peer copy exists (the requester fills SHARED)."""
        shared = False
        for owner in self._sharers.get(block, ()):
            if owner == core_id:
                continue
            self.l1s[owner].downgrade(block, SHARED)
            shared = True
        return shared

    def _invalidate_other_l1s(self, core_id: int, block: int) -> Dict[int, int]:
        """Invalidate every other L1 copy; returns merged dirty data."""
        merged: Dict[int, int] = {}
        for owner in list(self._sharers.get(block, ())):
            if owner == core_id:
                continue
            victim = self.l1s[owner].invalidate(block)
            self._sharer_drop(owner, block)
            if victim is not None:
                self.stats.add("coherence_invalidations")
                if victim.dirty:
                    merged.update(victim.data)
        return merged

    def _merge_into_llc(self, block: int, data: Dict[int, int],
                        dirty: bool, now: int) -> None:
        """Fold (possibly dirty) data into the inclusive LLC copy."""
        line = self.llc.lookup(block, touch=False)
        if line is None:
            victim = self.llc.insert(block, dict(data),
                                     MODIFIED if dirty else EXCLUSIVE)
            if victim is not None:
                self._retire_llc_victim(victim, now)
            return
        line.data.update(data)
        if dirty:
            line.state = MODIFIED

    def _retire_llc_victim(self, victim: EvictedLine, now: int) -> None:
        """An LLC line leaves the hierarchy: enforce inclusivity by pulling
        back any L1 copies, then notify the PMC if the result is dirty."""
        data = dict(victim.data)
        dirty = victim.dirty
        for owner in list(self._sharers.get(victim.block, ())):
            pulled = self.l1s[owner].invalidate(victim.block)
            self._sharer_drop(owner, victim.block)
            if pulled is not None:
                self.stats.add("inclusive_back_invalidations")
                if pulled.dirty:
                    data.update(pulled.data)
                    dirty = True
        if dirty:
            self.stats.add("llc_dirty_writebacks")
            arrival = self.flush_path.send(now)
            self.pmc.accept_writeback(victim.block * 64, data, arrival)
        else:
            self.stats.add("llc_clean_evictions")

    def _fill_l1(self, core_id: int, block: int, data: Dict[int, int],
                 state: str, now: int) -> None:
        victim = self.l1s[core_id].insert(block, data, state)
        self._sharer_add(core_id, block)
        if victim is not None:
            self._sharer_drop(core_id, victim.block)
            if victim.dirty:
                self.stats.add("l1_dirty_evictions")
                self._merge_into_llc(victim.block, victim.data,
                                     dirty=True, now=now)

    # ----------------------------------------------------------------- load

    def load(self, core_id: int, addr: int, now: int) -> LoadResult:
        block = block_of(addr)
        l1 = self.l1s[core_id]
        t = now + self.l1_lat
        line = l1.lookup(block)
        if line is not None:
            self.stats.add("l1_hits")
            return LoadResult(value=line.data.get(addr, 0), done=t,
                              level="l1")
        t += self.l2_lat
        # Dirty copy in a peer L1: cache-to-cache transfer, both -> SHARED.
        owner = self._other_modified_owner(core_id, block)
        if owner is not None:
            self.stats.add("c2c_transfers")
            peer = self.l1s[owner].lookup(block, touch=False)
            data = dict(peer.data)
            self.l1s[owner].downgrade(block, SHARED)
            self._merge_into_llc(block, data, dirty=True, now=t)
            self._fill_l1(core_id, block, dict(data), SHARED, t)
            return LoadResult(value=data.get(addr, 0), done=t, level="c2c")
        llc_line = self.llc.lookup(block)
        if llc_line is not None:
            self.stats.add("llc_hits")
            shared = self._snoop_downgrade_peers(core_id, block)
            self._fill_l1(core_id, block, dict(llc_line.data),
                          SHARED if shared else EXCLUSIVE, t)
            return LoadResult(value=llc_line.data.get(addr, 0), done=t,
                              level="llc")
        # PM access (regular path read).
        self.stats.add("pm_reads")
        pm_event, est_done = self.pmc.read_block(block, t)
        result_event = self.env.event()
        # Stale-read accounting compares against the architectural value
        # a race-free reader should observe *when the load issues*; later
        # same-thread stores must not be mistaken for staleness.
        arch_at_issue = self.image.read(addr)

        def on_fill(event: Event) -> None:
            content, done = event.value
            value = content.get(addr, 0)
            # Stale means the PM returned an *old* value: different from
            # what a race-free reader expected at issue AND not simply the
            # fresh value of a store whose persist landed before this
            # read's (queue-delayed) arrival at the controller.
            stale = (value != arch_at_issue
                     and value != self.image.read(addr))
            if stale:
                self.stats.add("stale_reads")
            # A store may have write-allocated this block while the fetch
            # was in flight; never clobber newer cached data -- only add
            # words the caches do not have yet.
            existing = self.llc.lookup(block, touch=False)
            if existing is None:
                llc_victim = self.llc.insert(block, dict(content),
                                             EXCLUSIVE)
                if llc_victim is not None:
                    self._retire_llc_victim(llc_victim, done)
            else:
                for word_addr, word_value in content.items():
                    existing.data.setdefault(word_addr, word_value)
            l1_line = self.l1s[core_id].lookup(block, touch=False)
            if l1_line is None:
                owner = self._other_modified_owner(core_id, block)
                if owner is not None:
                    # A store write-allocated the block (MODIFIED) while
                    # the fetch was in flight: fill from the peer's data,
                    # c2c-style, so the caches stay coherent even though
                    # the load's returned value is the (possibly stale)
                    # PM content.
                    peer = self.l1s[owner].lookup(block, touch=False)
                    data = dict(peer.data)
                    self.l1s[owner].downgrade(block, SHARED)
                    self._merge_into_llc(block, data, dirty=True, now=done)
                    self._fill_l1(core_id, block, data, SHARED, done)
                else:
                    shared = self._snoop_downgrade_peers(core_id, block)
                    self._fill_l1(core_id, block, dict(content),
                                  SHARED if shared else EXCLUSIVE, done)
            else:
                for word_addr, word_value in content.items():
                    l1_line.data.setdefault(word_addr, word_value)
            result_event.succeed(LoadResult(value=value, done=done,
                                            level="pm", stale=stale))

        pm_event.add_callback(on_fill)
        return LoadResult(event=result_event, done=est_done)

    # ---------------------------------------------------------------- store

    def store(self, core_id: int, addr: int, value: int, now: int) -> int:
        """Apply a committed store through the caches; returns the time the
        store is globally performed (exclusive ownership + data written)."""
        block = block_of(addr)
        l1 = self.l1s[core_id]
        self.image.write(addr, value)
        line = l1.lookup(block)
        if line is not None and line.state in (MODIFIED, EXCLUSIVE):
            self.stats.add("store_l1_hits")
            l1.write(block, addr, value)
            return now + self.l1_lat
        t = now + self.l1_lat + self.l2_lat
        if line is not None:  # SHARED: upgrade
            self.stats.add("store_upgrades")
            self._invalidate_other_l1s(core_id, block)
            l1.write(block, addr, value)
            line.state = MODIFIED
            return t
        # Write-allocate fetch.
        owner = self._other_modified_owner(core_id, block)
        merged = self._invalidate_other_l1s(core_id, block)
        if owner is not None:
            self.stats.add("store_c2c")
            data = merged
            self._merge_into_llc(block, data, dirty=True, now=t)
        else:
            llc_line = self.llc.lookup(block)
            if llc_line is not None:
                self.stats.add("store_llc_hits")
                data = dict(llc_line.data)
            else:
                # Write-on-allocation fetch from PM (Figure 4): a regular-
                # path Read the PMC observes, though the store itself does
                # not wait for full fetch latency in an OoO core; charge
                # the LLC round trip and book the PM read.
                self.stats.add("store_pm_fetches")
                self.pmc.read_block(block, t)
                data = dict(self.pmc.device.block_content(block))
                llc_victim = self.llc.insert(block, dict(data), EXCLUSIVE)
                if llc_victim is not None:
                    self._retire_llc_victim(llc_victim, t)
        data[addr] = value
        self._fill_l1(core_id, block, data, MODIFIED, t)
        return t

    # ----------------------------------------------------------------- clwb

    def clwb(self, core_id: int, addr: int, now: int) -> int:
        """Write the line containing ``addr`` back toward the PMC without
        invalidating it.  Returns the durability (WPQ-acceptance) time a
        following SFENCE must wait for."""
        block = block_of(addr)
        t = now + self.l1_lat
        line = self.l1s[core_id].lookup(block, touch=False)
        if line is not None and line.state == MODIFIED:
            self.stats.add("clwb_flushes")
            line.state = EXCLUSIVE
            self._merge_into_llc(block, dict(line.data), dirty=False, now=t)
            arrival = self.flush_path.send(t)
            return self.pmc.accept_writeback(block * 64, dict(line.data),
                                             arrival)
        llc_line = self.llc.lookup(block, touch=False)
        if llc_line is not None and llc_line.state == MODIFIED:
            self.stats.add("clwb_flushes")
            llc_line.state = EXCLUSIVE
            arrival = self.flush_path.send(t + self.l2_lat)
            return self.pmc.accept_writeback(block * 64,
                                             dict(llc_line.data), arrival)
        self.stats.add("clwb_clean")
        return t
