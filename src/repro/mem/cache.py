"""Set-associative write-back cache with LRU replacement.

Lines carry their block's byte contents as a sparse ``{addr: value}``
map so that flushes and writebacks persist exactly what the cache holds
-- which is what makes stale reads (PMEM-Spec's load misspeculation)
representable: a block fetched from the PM device can disagree with the
architectural image while the new value is still on the persist path.

Coherence state is MESI-lite (I/S/E/M); the hierarchy maintains the
inter-cache protocol, this class only stores per-line state.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..sim import Counter

INVALID = "I"
SHARED = "S"
EXCLUSIVE = "E"
MODIFIED = "M"

_VALID_STATES = (SHARED, EXCLUSIVE, MODIFIED)


class CacheLine:
    """One cache line: block tag, MESI state, contents, LRU stamp."""

    __slots__ = ("block", "state", "data", "lru_tick")

    def __init__(self, block: int, state: str, data: Dict[int, int],
                 lru_tick: int):
        self.block = block
        self.state = state
        self.data = data
        self.lru_tick = lru_tick

    @property
    def dirty(self) -> bool:
        return self.state == MODIFIED

    def __repr__(self) -> str:
        return f"CacheLine(block={self.block}, state={self.state})"


class EvictedLine:
    """A victim pushed out by :meth:`Cache.insert`."""

    __slots__ = ("block", "state", "data")

    def __init__(self, line: CacheLine):
        self.block = line.block
        self.state = line.state
        self.data = line.data

    @property
    def dirty(self) -> bool:
        return self.state == MODIFIED


class Cache:
    """An ``n_sets x n_ways`` write-back cache."""

    def __init__(self, name: str, n_sets: int, n_ways: int):
        if n_sets < 1 or n_ways < 1:
            raise ValueError("cache geometry must be positive")
        self.name = name
        self.n_sets = n_sets
        self.n_ways = n_ways
        self._sets: Dict[int, List[CacheLine]] = {}
        self._tick = 0
        self.stats = Counter()

    def _set_of(self, block: int) -> List[CacheLine]:
        return self._sets.setdefault(block % self.n_sets, [])

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def lookup(self, block: int, touch: bool = True) -> Optional[CacheLine]:
        """Find the line holding ``block``; optionally refresh its LRU age."""
        for line in self._set_of(block):
            if line.block == block:
                if touch:
                    line.lru_tick = self._next_tick()
                return line
        return None

    def insert(self, block: int, data: Dict[int, int],
               state: str) -> Optional[EvictedLine]:
        """Install ``block``; returns the evicted victim if the set was full.

        Inserting a block that is already present replaces its contents
        and state in place (no eviction).
        """
        if state not in _VALID_STATES:
            raise ValueError(f"cannot insert line in state {state!r}")
        cache_set = self._set_of(block)
        existing = self.lookup(block, touch=True)
        if existing is not None:
            existing.data = data
            existing.state = state
            return None
        victim: Optional[EvictedLine] = None
        if len(cache_set) >= self.n_ways:
            loser = min(cache_set, key=lambda line: line.lru_tick)
            cache_set.remove(loser)
            victim = EvictedLine(loser)
            self.stats.add("evictions")
            if victim.dirty:
                self.stats.add("dirty_evictions")
        cache_set.append(CacheLine(block, state, data, self._next_tick()))
        self.stats.add("fills")
        return victim

    def write(self, block: int, addr: int, value: int) -> None:
        """Write one word into a resident line and mark it MODIFIED."""
        line = self.lookup(block)
        if line is None:
            raise KeyError(f"{self.name}: write to non-resident block {block}")
        line.data[addr] = value
        line.state = MODIFIED

    def downgrade(self, block: int, state: str) -> Optional[CacheLine]:
        """Change a resident line's state (M->S on sharing, etc.)."""
        line = self.lookup(block, touch=False)
        if line is not None:
            line.state = state
        return line

    def invalidate(self, block: int) -> Optional[EvictedLine]:
        """Drop ``block`` if resident; returns its final contents."""
        cache_set = self._set_of(block)
        for line in cache_set:
            if line.block == block:
                cache_set.remove(line)
                self.stats.add("invalidations")
                return EvictedLine(line)
        return None

    def resident_blocks(self) -> Iterator[int]:
        for cache_set in self._sets.values():
            for line in cache_set:
                yield line.block

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets.values())

    def __contains__(self, block: int) -> bool:
        return self.lookup(block, touch=False) is not None

    def capture_state(self) -> dict:
        # Sets as an ordered item list: dict iteration order is
        # insertion order, and replacement decisions walk it, so the
        # restore must rebuild the same order to replay identically.
        return {"sets": [
                    (set_index,
                     [{"block": line.block, "state": line.state,
                       "data": list(line.data.items()),
                       "lru_tick": line.lru_tick}
                      for line in cache_set])
                    for set_index, cache_set in self._sets.items()],
                "tick": self._tick,
                "stats": self.stats.capture_state()}

    def restore_state(self, state: dict) -> None:
        self._sets = {}
        for set_index, lines in state["sets"]:
            self._sets[set_index] = [
                CacheLine(line["block"], line["state"],
                          {addr: value for addr, value in line["data"]},
                          line["lru_tick"])
                for line in lines]
        self._tick = state["tick"]
        self.stats.restore_state(state["stats"])
