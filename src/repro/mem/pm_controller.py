"""The persistent-memory controller (PMC).

The PMC owns the read and write-pending queues (Table 3: 32/64 entries)
and the durability point: under ADR (§8.1) a write is durable once it is
*accepted* into the write queue, so acceptance times are what fences and
spec-barriers wait on.

Behavioural differences between the four evaluated designs are injected
through a :class:`PMCPolicy`:

* the **default** policy (IntelX86/DPO) persists CLWB data and LLC dirty
  writebacks;
* **HOPS** adds a bloom-filter lookup to every PM read and persists from
  its per-core persist buffers;
* **PMEM-Spec** (:mod:`repro.core.pmem_spec`) silently *drops* LLC
  writeback data, persists only persist-path messages, and feeds every
  arrival into the speculation buffer's automaton.

All policy hooks run at message *arrival time* in global time order (the
controller schedules them on the event heap), which is what makes the
``WriteBack - Read - Persist`` misspeculation pattern detectable exactly
as in Figure 5.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import SystemConfig
from ..sim import CapacityQueue, Counter, Environment, Event
from .interconnect import PersistMessage
from .pm_device import PMDevice


class PMCPolicy:
    """Default (baseline) PMC behaviour; designs override pieces."""

    def attach(self, pmc: "PMController") -> None:
        self.pmc = pmc

    def read_delay(self, block: int, now: int) -> int:
        """Extra cycles charged before a PM read is enqueued (HOPS bloom)."""
        return 0

    def on_read(self, block: int, now: int) -> None:
        """Called at read-arrival time, in global time order."""

    def on_writeback(self, block_addr: int, data: Dict[int, int],
                     now: int) -> None:
        """Called at writeback-arrival time; baselines persist the block."""
        self.pmc.device.persist_block(block_addr, data, now)

    def on_persist(self, msg: PersistMessage, now: int) -> None:
        """Called at persist-path message arrival; persists the store."""
        self.pmc.device.persist_store(msg.addr, msg.value, now)

    def capture_state(self) -> dict:
        """Policies are stateless by default; stateful ones override."""
        return {}

    def restore_state(self, state: dict) -> None:
        pass


class PMController:
    """Read/write queueing plus policy dispatch for one PM channel."""

    def __init__(self, env: Environment, config: SystemConfig,
                 device: PMDevice, policy: Optional[PMCPolicy] = None):
        self.env = env
        self.config = config
        self.device = device
        self.policy = policy or PMCPolicy()
        self.policy.attach(self)
        self.read_queue = CapacityQueue(
            capacity=config.pmc_read_queue,
            drain_latency=config.ns(config.pm_read_ns),
            width=config.pmc_banks, name="pmc.read")
        self.write_queue = CapacityQueue(
            capacity=config.pmc_write_queue,
            drain_latency=config.ns(config.pm_write_ns),
            width=config.pmc_write_banks, name="pmc.write")
        # Open (not yet drained) WPQ entries by block: the controller
        # "coalesces and buffers the store data" (§4.2), so stores landing
        # in a block whose entry is still pending merge into it instead of
        # consuming another entry.
        self._wpq_open: Dict[int, tuple] = {}
        # Per-core FIFO clamp for persist-path acceptance times.
        self._core_fifo: Dict[int, int] = {}
        self.stats = Counter()
        # Hook fired once per real (non-coalesced) WPQ admission.
        self.on_accept = None

    #: Trace track for controller-side acceptance events.
    TRACE_TRACK = "pmc"

    def _observe_wpq(self, now: int) -> None:
        self.env.metrics.sample("wpq_depth", now,
                                self.write_queue.occupancy(now))

    def _wpq_admit(self, block: int, arrival: int) -> int:
        """Admit one block-granular write; coalesces into a pending entry
        for the same block when possible.  Returns the ADR-acceptance time."""
        entry = self._wpq_open.get(block)
        if entry is not None:
            booked_at, accept, drain = entry
            if booked_at <= arrival < drain:
                self.stats.add("wpq_coalesced")
                return max(arrival, accept)
        accept, drain = self.write_queue.push(arrival)
        self._wpq_open[block] = (arrival, accept, drain)
        if len(self._wpq_open) > 4096:
            self._wpq_open = {b: e for b, e in self._wpq_open.items()
                              if e[2] > arrival}
        if self.on_accept is not None:
            self.on_accept()
        return accept

    # ---------------------------------------------------------------- reads

    def read_block(self, block: int, now: int):
        """Fetch a block from PM for the regular path.

        Returns ``(event, done)``: the event fires at ``done`` with the
        block contents *as persisted at arrival time* -- the stale-read
        semantics of §5.1: a value still in flight on the persist path is
        not visible.  ``done`` is exposed synchronously so the core can
        model memory-level parallelism without blocking on the event.
        """
        self.stats.add("reads")
        delay = self.policy.read_delay(block, now)
        if delay:
            self.stats.add("read_delay_cycles", delay)
        accept, done = self.read_queue.push(now + delay)
        if self.env.trace.enabled:
            # Reads participate in the WriteBack-Read-Persist pattern
            # (Figure 5), so the oracle needs them in the trace stream
            # at the same time the policy observes them.
            self.env.trace.instant(self.TRACE_TRACK, "pm-read", accept,
                                   args={"block": block}, cat="pmc")
        completion = self.env.event()
        content_cell: Dict[int, int] = {}

        def at_arrival() -> None:
            self.policy.on_read(block, self.env.now)
            content_cell.update(self.device.block_content(block))

        self.env.call_at(accept, at_arrival)
        self.env.call_at(done, lambda: completion.succeed(
            (dict(content_cell), done)))
        return completion, done

    # ----------------------------------------------------------- writebacks

    def accept_writeback(self, block_addr: int, data: Dict[int, int],
                         arrival: int) -> int:
        """An LLC dirty eviction or CLWB flush arriving from the regular
        path.  Returns the write-queue acceptance (durability) time."""
        self.stats.add("writebacks")
        accept = self._wpq_admit(block_addr >> 6, arrival)
        if self.env.trace.enabled:
            self.env.trace.instant(
                self.TRACE_TRACK, "writeback-accept", accept,
                args={"block": block_addr >> 6}, cat="pmc")
        if self.env.metrics.enabled:
            self._observe_wpq(arrival)
        snapshot = dict(data)
        self.env.call_at(
            accept, lambda: self.policy.on_writeback(
                block_addr, snapshot, self.env.now))
        return accept

    # -------------------------------------------------------- persist path

    def accept_persist(self, msg: PersistMessage, arrival: int) -> int:
        """A persist-path store arriving; returns acceptance (ADR) time.

        Acceptance is clamped to be FIFO per source core: the persist
        path delivers a core's stores in commit order, and WPQ admission
        must not reorder them (strict intra-thread persist order is the
        property the undo-log protocol rests on)."""
        self.stats.add("persists")
        accept = self._wpq_admit(msg.addr >> 6, arrival)
        previous = self._core_fifo.get(msg.core_id, 0)
        if accept < previous:
            accept = previous
        self._core_fifo[msg.core_id] = accept
        if self.env.trace.enabled:
            args = {"core": msg.core_id, "block": msg.addr >> 6,
                    "arrival": arrival}
            if msg.spec_id:
                args["spec_id"] = msg.spec_id
            self.env.trace.instant(self.TRACE_TRACK, "persist-accept",
                                   accept, args=args, cat="pmc")
        if self.env.metrics.enabled:
            self._observe_wpq(arrival)
        self.env.call_at(
            accept, lambda: self.policy.on_persist(msg, self.env.now))
        return accept

    # -------------------------------------------------------------- helpers

    def write_queue_drained(self, now: int) -> int:
        """Time at which everything currently in the WPQ has reached the
        device (only needed by explicit drain experiments, not ADR)."""
        return self.write_queue.drain_complete_time(now)

    # ---------------------------------------------------------- snapshotting

    def capture_state(self) -> dict:
        # _wpq_open/_core_fifo as ordered item lists: insertion order
        # matters for the >4096 prune and for replay determinism.  The
        # device is captured by the system (PMCComplex controllers share
        # one device; capturing it here would multiply it).
        return {"read_queue": self.read_queue.capture_state(),
                "write_queue": self.write_queue.capture_state(),
                "wpq_open": [(block, list(entry))
                             for block, entry in self._wpq_open.items()],
                "core_fifo": list(self._core_fifo.items()),
                "stats": self.stats.capture_state(),
                "policy": self.policy.capture_state()}

    def restore_state(self, state: dict) -> None:
        self.read_queue.restore_state(state["read_queue"])
        self.write_queue.restore_state(state["write_queue"])
        self._wpq_open = {block: tuple(entry)
                          for block, entry in state["wpq_open"]}
        self._core_fifo = {core: t for core, t in state["core_fifo"]}
        self.stats.restore_state(state["stats"])
        self.policy.restore_state(state["policy"])
