"""Multiple PM controllers (§7).

PMEM-Spec "currently cannot support systems with multiple PM
controllers": detection state lives inside one controller, and the
per-core FIFO property of the persist path only holds *per controller*
-- two stores from one core that route to different controllers can be
accepted (become durable) out of program order, breaking the strict
intra-thread persist order that both misspeculation detection and the
undo-log protocol rest on.

:class:`PMCComplex` models exactly that: ``n`` controllers interleaved
by cache-block number, each with its own queues, policy (and, under
PMEM-Spec, its own speculation buffer), sharing one PM device.
``set_controller_extra`` skews one controller's arrival latency so the
hazard is reachable in small runs.

The paper leaves the fix -- "an extension to an on-chip network to make
it respect the store order" -- as future work; ``ordered_noc=True``
implements it: per-core acceptance is clamped to be monotone *across*
controllers, restoring strict order at the cost of coupling the
controllers' admission.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import SystemConfig
from ..sim import Counter, Environment
from .interconnect import PersistMessage
from .pm_controller import PMCPolicy, PMController
from .pm_device import PMDevice


class PMCComplex:
    """N block-interleaved PM controllers behind one device."""

    def __init__(self, env: Environment, config: SystemConfig,
                 device: PMDevice,
                 policies: Optional[Sequence[PMCPolicy]] = None,
                 n_controllers: Optional[int] = None,
                 ordered_noc: Optional[bool] = None):
        self.env = env
        self.config = config
        self.device = device
        count = n_controllers or config.n_pm_controllers
        if count < 1:
            raise ValueError("need at least one PM controller")
        if policies is None:
            policies = [PMCPolicy() for _ in range(count)]
        if len(policies) != count:
            raise ValueError(
                f"{count} controllers need {count} policies, "
                f"got {len(policies)}")
        self.controllers: List[PMController] = [
            PMController(env, config, device, policy)
            for policy in policies]
        self.ordered_noc = (config.ordered_noc if ordered_noc is None
                            else ordered_noc)
        self._extra: List[int] = [0] * count
        # Ordered-NoC state: last acceptance per core, across controllers.
        self._core_order: Dict[int, int] = {}
        self.local_stats = Counter()

    # ------------------------------------------------------------- routing

    @property
    def n_controllers(self) -> int:
        return len(self.controllers)

    def route(self, block: int) -> int:
        """Which controller owns cache block ``block`` (interleaved)."""
        return block % self.n_controllers

    def controller_of(self, block: int) -> PMController:
        return self.controllers[self.route(block)]

    def set_controller_extra(self, index: int, cycles: int) -> None:
        """Extra arrival latency into controller ``index`` (asymmetric
        interconnect distance/congestion; the §7 hazard needs it)."""
        if cycles < 0:
            raise ValueError("negative extra latency")
        self._extra[index] = cycles

    # ------------------------------------------------- PMC-compatible API

    def read_block(self, block: int, now: int):
        return self.controller_of(block).read_block(block, now)

    def accept_writeback(self, block_addr: int, data, arrival: int) -> int:
        block = block_addr >> 6
        arrival += self._extra[self.route(block)]
        return self.controller_of(block).accept_writeback(
            block_addr, data, arrival)

    def accept_persist(self, msg: PersistMessage, arrival: int) -> int:
        block = msg.addr >> 6
        index = self.route(block)
        arrival += self._extra[index]
        previous = self._core_order.get(msg.core_id, 0)
        if self.ordered_noc and arrival < previous:
            # Future-work extension (§7): the NoC respects store order,
            # so a message cannot reach its controller before the core's
            # earlier messages were accepted elsewhere.
            self.local_stats.add("noc_order_clamps")
            arrival = previous
        accept = self.controllers[index].accept_persist(msg, arrival)
        if accept < previous:
            # Only reachable without the ordered NoC: the §7 hazard.
            self.local_stats.add("cross_pmc_reorderings")
        self._core_order[msg.core_id] = max(previous, accept)
        return accept

    # --------------------------------------------------------------- stats

    @property
    def stats(self) -> Counter:
        merged = Counter()
        merged.merge(self.local_stats)
        for controller in self.controllers:
            merged.merge(controller.stats)
        return merged

    def write_queue_drained(self, now: int) -> int:
        return max(controller.write_queue_drained(now)
                   for controller in self.controllers)

    # ---------------------------------------------------------- snapshotting

    def capture_state(self) -> dict:
        return {"controllers": [controller.capture_state()
                                for controller in self.controllers],
                "core_order": list(self._core_order.items()),
                "local_stats": self.local_stats.capture_state()}

    def restore_state(self, state: dict) -> None:
        for controller, sub in zip(self.controllers, state["controllers"]):
            controller.restore_state(sub)
        self._core_order = {core: t for core, t in state["core_order"]}
        self.local_stats.restore_state(state["local_stats"])
