"""Interconnects: the decoupled persist path (ring bus) and flush path.

The persist path is PMEM-Spec's core hardware addition (§4.2): a FIFO
channel from each core's store queue directly to the PM controller.  We
model the ring topology of §8.1: every message occupies a shared ring
slot (serialisation under contention) and then takes the idle traversal
latency; per-core FIFO order -- the property that gives strict
intra-thread persist order -- is enforced explicitly.

DPO's delegated-persist flush path reuses the same class with
``global_fifo=True``: DPO "globally serializes PM stores and allows only
a single flush to the persistent memory controller at once" (§8.2.2),
i.e. FIFO across *all* cores, not just within one.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..config import SystemConfig
from ..sim import Counter, TimelineResource
from ..sim.metrics import NULL_METRICS, Metrics


class PersistPath:
    """Ring-bus store path from the store queues to the PM controller."""

    def __init__(self, config: SystemConfig, n_cores: int,
                 traversal_cycles: int = None, global_fifo: bool = False,
                 metrics: Optional[Metrics] = None):
        self.config = config
        self.n_cores = n_cores
        self.traversal = (config.ns(config.persist_path_ns)
                          if traversal_cycles is None else traversal_cycles)
        self.slot_cycles = max(1, config.ns(config.ring_slot_ns))
        self.global_fifo = global_fifo
        self._bus = TimelineResource(width=config.persist_path_lanes,
                                     name="persist-ring")
        self._last_arrival: List[int] = [0] * n_cores
        self._core_extra: List[int] = [0] * n_cores
        self._global_last = 0
        self.metrics = NULL_METRICS if metrics is None else metrics
        # Arrival times of messages injected but not yet at the PMC,
        # in injection order; lazily pruned when sampling depth.
        self._in_flight: Deque[int] = deque()
        self.stats = Counter()

    def set_core_extra(self, core_id: int, cycles: int) -> None:
        """Add fixed extra latency to one core's path.  Models asymmetric
        ring congestion; the §8.4 synthetic store-misspeculation
        experiment uses it to make one core's persists arrive late."""
        if cycles < 0:
            raise ValueError("negative extra latency")
        self._core_extra[core_id] = cycles

    def send(self, core_id: int, now: int) -> int:
        """Inject a message at ``now``; returns its PMC arrival time."""
        if not 0 <= core_id < self.n_cores:
            raise ValueError(f"bad core id {core_id}")
        _start, slot_done = self._bus.reserve(now, self.slot_cycles)
        arrival = slot_done + self.traversal + self._core_extra[core_id]
        # Per-core FIFO: a later message can never overtake an earlier one
        # from the same core (this is the strict intra-thread persist order).
        if arrival <= self._last_arrival[core_id]:
            arrival = self._last_arrival[core_id] + 1
        if self.global_fifo and arrival <= self._global_last:
            arrival = self._global_last + 1
        self._last_arrival[core_id] = arrival
        self._global_last = max(self._global_last, arrival)
        self.stats.add("messages")
        self.stats.add("cycles_waited", max(0, slot_done - now - self.slot_cycles))
        if self.metrics.enabled:
            in_flight = self._in_flight
            while in_flight and in_flight[0] <= now:
                in_flight.popleft()
            in_flight.append(arrival)
            self.metrics.sample("persist_path_depth", now, len(in_flight))
        return arrival

    def last_arrival(self, core_id: int) -> int:
        """Arrival time of the most recent message from ``core_id``
        (what a durability barrier must wait for)."""
        return self._last_arrival[core_id]

    def idle_window(self) -> int:
        """§8.1 speculative period: n_cores x idle path latency."""
        return self.n_cores * self.traversal

    def capture_state(self) -> dict:
        return {"bus": self._bus.capture_state(),
                "last_arrival": list(self._last_arrival),
                "core_extra": list(self._core_extra),
                "global_last": self._global_last,
                "in_flight": list(self._in_flight),
                "stats": self.stats.capture_state()}

    def restore_state(self, state: dict) -> None:
        self._bus.restore_state(state["bus"])
        self._last_arrival = list(state["last_arrival"])
        self._core_extra = list(state["core_extra"])
        self._global_last = state["global_last"]
        self._in_flight = deque(state["in_flight"])
        self.stats.restore_state(state["stats"])


class FlushPath:
    """Regular-path flush traversal (CLWB / LLC writeback to the PMC).

    A simple shared link with the L1-to-PMC latency of §8.1 (11 ns) and
    slot-level serialisation; much wider than the ring since it rides the
    existing memory interconnect.
    """

    def __init__(self, config: SystemConfig, width: int = 4):
        self.traversal = config.ns(config.l1_to_pmc_ns)
        self.slot_cycles = max(1, config.ns(config.ring_slot_ns))
        self._bus = TimelineResource(width=width, name="flush-path")
        self.stats = Counter()

    def send(self, now: int) -> int:
        """Returns arrival time at the PMC."""
        _start, slot_done = self._bus.reserve(now, self.slot_cycles)
        self.stats.add("messages")
        return slot_done + self.traversal

    def capture_state(self) -> dict:
        return {"bus": self._bus.capture_state(),
                "stats": self.stats.capture_state()}

    def restore_state(self, state: dict) -> None:
        self._bus.restore_state(state["bus"])
        self.stats.restore_state(state["stats"])


class SpecIdCounter:
    """The global speculation-ID counter (§5.2.2).

    ``spec-assign`` atomically reads and increments it at critical-section
    entry, so threads receive IDs in the order they enter critical
    sections -- exactly the happens-before order the mutex establishes.
    IDs start at 1; 0 means "untagged" (outside any critical section).
    """

    UNTAGGED = 0

    def __init__(self) -> None:
        self._next = 1
        self.assigned = 0

    def assign(self) -> int:
        spec_id = self._next
        self._next += 1
        self.assigned += 1
        return spec_id

    @property
    def current(self) -> int:
        return self._next

    def capture_state(self) -> dict:
        return {"next": self._next, "assigned": self.assigned}

    def restore_state(self, state: dict) -> None:
        self._next = state["next"]
        self.assigned = state["assigned"]


class PersistMessage:
    """One persist-path message: a committed PM store."""

    __slots__ = ("core_id", "addr", "value", "spec_id", "kind")

    def __init__(self, core_id: int, addr: int, value: int,
                 spec_id: int = SpecIdCounter.UNTAGGED, kind: str = "data"):
        self.core_id = core_id
        self.addr = addr
        self.value = value
        self.spec_id = spec_id
        self.kind = kind

    @property
    def tagged(self) -> bool:
        return self.spec_id != SpecIdCounter.UNTAGGED

    def __repr__(self) -> str:
        tag = f", spec_id={self.spec_id}" if self.tagged else ""
        return (f"PersistMessage(core={self.core_id}, addr=0x{self.addr:x}"
                f"{tag})")


class LockNetwork:
    """Futex-style lock handoff cost between cores.

    Workload locks are DES mutexes; this adds the cache-line transfer
    latency a contended lock word costs when ownership migrates.
    """

    def __init__(self, config: SystemConfig):
        self.handoff_cycles = config.ns(config.lock_handoff_ns)
        self._last_owner: Dict[int, int] = {}

    def transfer_cost(self, lock_id: int, core_id: int) -> int:
        """Cycles to acquire ``lock_id`` on ``core_id`` given its last owner."""
        previous = self._last_owner.get(lock_id)
        self._last_owner[lock_id] = core_id
        if previous is None or previous == core_id:
            return 0
        return self.handoff_cycles

    def capture_state(self) -> dict:
        return {"last_owner": list(self._last_owner.items())}

    def restore_state(self, state: dict) -> None:
        self._last_owner = {lock: core for lock, core in state["last_owner"]}
