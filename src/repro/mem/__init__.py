"""Memory subsystem: caches, PM device, PM controller, interconnects."""

from .cache import (
    EXCLUSIVE,
    INVALID,
    MODIFIED,
    SHARED,
    Cache,
    CacheLine,
    EvictedLine,
)
from .hierarchy import CacheHierarchy, LoadResult, MemoryImage
from .interconnect import (
    FlushPath,
    LockNetwork,
    PersistMessage,
    PersistPath,
    SpecIdCounter,
)
from .pm_complex import PMCComplex
from .pm_controller import PMController, PMCPolicy
from .pm_device import PMDevice

__all__ = [
    "Cache", "CacheHierarchy", "CacheLine", "EXCLUSIVE", "EvictedLine",
    "FlushPath", "INVALID", "LoadResult", "LockNetwork", "MODIFIED",
    "MemoryImage", "PMCComplex", "PMCPolicy", "PMController", "PMDevice",
    "PersistMessage", "PersistPath", "SHARED", "SpecIdCounter",
]
