"""The IntelX86 epoch-persistency baseline (§8.1).

Implements the epoch-based persistency model with stock x86 primitives:
``CLWB`` pushes a dirty line toward the PM controller and ``SFENCE``
divides the program into epochs, stalling the core until every prior
CLWB's data has been accepted into the ADR domain.  Both consume store
queue entries (§8.2.1), which the CPU core models via the occupancy
services this class returns.

LLC dirty writebacks persist normally (the default PMC policy): with the
x86 ISA persistent data always travels the regular path.
"""

from __future__ import annotations

from typing import List

from .base import Design


class IntelX86Epoch(Design):
    """Epoch persistency with CLWB + SFENCE on unmodified hardware."""

    name = "IntelX86"
    flavor = "x86"

    def bind(self, system) -> None:
        super().bind(system)
        # Acceptance time of the latest outstanding CLWB per core; SFENCE
        # waits for the max.
        self._clwb_horizon: List[int] = [0] * system.config.n_cores

    def clwb(self, core_id: int, addr: int, now: int) -> int:
        accept = self.system.hierarchy.clwb(core_id, addr, now)
        if accept > self._clwb_horizon[core_id]:
            self._clwb_horizon[core_id] = accept
        self.stats.add("clwbs")
        trace = self.system.env.trace
        if trace.enabled:
            # Flush-attribution instant: lets the epoch durable-state
            # model (repro.crashstates.models) join the device-level
            # writeback accepted at this (block, cycle) to the flushing
            # core, and hence to that core's open epoch.
            trace.instant("order", "flush", accept,
                          args={"core": core_id, "block": addr >> 6},
                          cat="order")
        return accept

    def sfence(self, core_id: int, now: int) -> int:
        """Stall until prior CLWBs are durable and the store queue has
        drained; returns the time the fence retires."""
        core = self.system.cores[core_id]
        done = max(now, self._clwb_horizon[core_id],
                   core.store_queue.drain_complete_time(now))
        self.stats.add("sfences")
        self.stats.add("sfence_stall_cycles", done - now)
        trace = self.system.env.trace
        if trace.enabled:
            # Epoch-closing instant: flushes accepted at or before this
            # retirement belong to a closed epoch and become mandatory
            # in every enumerated durable state.
            trace.instant("order", "fence", done,
                          args={"core": core_id}, cat="order")
        return done

    def quiesce_time(self, now: int) -> int:
        return max([now] + list(self._clwb_horizon))

    def capture_state(self) -> dict:
        state = super().capture_state()
        state["clwb_horizon"] = list(self._clwb_horizon)
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._clwb_horizon = list(state["clwb_horizon"])
