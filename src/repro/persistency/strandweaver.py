"""StrandWeaver (Gogte et al., ISCA'20): strand persistency -- the
*extension* comparison point beyond the paper's three baselines (§2.1,
§9 discuss it; the paper reports it beats HOPS at still-higher hardware
cost than PMEM-Spec).

Strand persistency lets the program declare independent *strands*:

* ``NewStrand`` clears persist-order dependencies -- the new strand's
  persists may drain concurrently with every older strand;
* ``persist_barrier`` (our :class:`~repro.isa.StrandBarrier`) orders
  persists within the current strand only and never stalls the core;
* ``JoinStrand`` makes subsequent persists ordered after all
  outstanding strands (used before a FASE's commit record).

Hardware model: a strand buffer beside each L1 whose entries drain to
the PMC over ``strand_lanes`` concurrent lanes; entries of one strand
chain FIFO behind each other, different strands only compete for lanes.
The undo-log groups of one FASE land in separate strands, so -- unlike
HOPS' single FIFO persist buffer -- a FASE's log/data groups drain in
parallel; only the commit record joins them.

Approximations (favourable to StrandWeaver, noted in DESIGN.md): the
delayed-exclusive-response coherence cost and the persist-queue core
extension are folded into the same one-bit bus overhead as HOPS; reads
are not checked against the strand buffers.
"""

from __future__ import annotations

from typing import Dict, List

from ..isa import block_of
from ..mem import PMCPolicy
from ..sim import TimelineResource
from .base import Design, PersistLog
from .dpo import DropWritebacksPolicy


class _CoreStrands:
    """Per-core strand-buffer drain state."""

    __slots__ = ("chain_finish", "outstanding", "open_blocks")

    def __init__(self) -> None:
        self.chain_finish = 0      # last drain finish of the CURRENT strand
        self.outstanding = 0       # max drain finish over ALL strands
        self.open_blocks: Dict[int, int] = {}


class StrandWeaver(Design):
    """Strand persistency with parallel per-strand drains."""

    name = "StrandWeaver"
    flavor = "strand"
    drops_llc_writebacks = True

    def bind(self, system) -> None:
        super().bind(system)
        config = system.config
        # Strand drains ride the persist path too (§8.1's shared knob).
        self._service = (config.ns(config.persist_path_ns)
                         + max(1, config.ns(config.ring_slot_ns)))
        lanes = int(config.extra.get("strand_lanes", 4))
        self._lanes: List[TimelineResource] = [
            TimelineResource(width=lanes, name=f"strand[{i}]")
            for i in range(config.n_cores)]
        self._cores: List[_CoreStrands] = [
            _CoreStrands() for _ in range(config.n_cores)]
        self._log = PersistLog(system)
        self._sticky_extra = config.ns(config.hops_sticky_bus_extra_ns)

    def build_pmc_policy(self, index: int = 0) -> PMCPolicy:
        return DropWritebacksPolicy()

    @property
    def bus_extra_cycles(self) -> int:
        return self._sticky_extra

    # -------------------------------------------------------------- stores

    def store(self, core_id: int, addr: int, value: int, now: int,
              to_pm: bool = True, kind: str = "data",
              shared: bool = True) -> int:
        done = self.system.hierarchy.store(core_id, addr, value, now)
        if to_pm:
            state = self._cores[core_id]
            block = block_of(addr)
            pending = state.open_blocks.get(block)
            if pending is not None and now < pending:
                self.stats.add("sb_coalesced")
                drained = pending
            else:
                # Chain behind the current strand, compete for a lane.
                start = max(now, state.chain_finish)
                _s, drained = self._lanes[core_id].reserve(start,
                                                           self._service)
                state.chain_finish = drained
                state.open_blocks[block] = drained
                if len(state.open_blocks) > 1024:
                    state.open_blocks = {b: d for b, d
                                         in state.open_blocks.items()
                                         if d > now}
            if drained > state.outstanding:
                state.outstanding = drained
            self._log.persist_at(addr, value, drained,
                                 origin=f"drain:c{core_id}")
            self.stats.add("pm_stores")
        return done

    # -------------------------------------------------------------- strands

    def new_strand(self, core_id: int, now: int) -> int:
        """Clear the intra-strand chain: the next persists start fresh."""
        state = self._cores[core_id]
        state.chain_finish = 0
        state.open_blocks.clear()
        self.stats.add("new_strands")
        return now + 1

    def strand_barrier(self, core_id: int, now: int) -> int:
        """Intra-strand ordering only: the FIFO chain already provides
        it, so the barrier is a single-cycle marker."""
        self.stats.add("strand_barriers")
        return now + 1

    def join_strand(self, core_id: int, now: int) -> int:
        """Subsequent persists chain behind every outstanding strand."""
        state = self._cores[core_id]
        state.chain_finish = max(state.chain_finish, state.outstanding)
        state.open_blocks.clear()
        self.stats.add("joins")
        return now + 1

    def dfence(self, core_id: int, now: int) -> int:
        """Durability: every outstanding strand has drained."""
        core = self.system.cores[core_id]
        state = self._cores[core_id]
        done = max(now, state.outstanding,
                   core.store_queue.drain_complete_time(now))
        self.stats.add("dfences")
        self.stats.add("dfence_stall_cycles", done - now)
        trace = self.system.env.trace
        if trace.enabled:
            # See repro.crashstates.models: the per-core chain model
            # (a conservative approximation of strand semantics) floors
            # every drain accepted at or before this retirement.
            trace.instant("order", "fence", done,
                          args={"core": core_id}, cat="order")
        return done

    def quiesce_time(self, now: int) -> int:
        return max([now] + [state.outstanding for state in self._cores])
