"""DPO: Delegated Persist Ordering (Kolli et al., MICRO'16) -- the
buffered strict persistency baseline (§8.1, §8.2.2).

DPO runs the same CLWB+SFENCE binary as the IntelX86 design, but the
hardware differs:

* a persist buffer beside each L1 absorbs flushes, so CLWB itself is
  cheap and LLC dirty writebacks are dropped (persistence is delegated
  to the buffers);
* flushes drain through a **globally serialised** channel -- DPO "allows
  only a single flush to the persistent memory controller at once";
* because DPO targets ARM's relaxed consistency, it enforces the persist
  order at *every* barrier inherited in the program, including the
  volatile synchronisation (lock) operations TSO would not need --
  which is why it lands below the x86 baseline in Figure 9.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from ..mem import PMCPolicy
from ..sim import TimelineResource
from .base import Design, PersistLog


class DropWritebacksPolicy(PMCPolicy):
    """LLC dirty writebacks carry no persistence duty in buffered designs."""

    def on_writeback(self, block_addr: int, data: Dict[int, int],
                     now: int) -> None:
        pass


class DPO(Design):
    """Buffered strict persistency with delegated, serialised flushing."""

    name = "DPO"
    flavor = "x86"
    drops_llc_writebacks = True

    def bind(self, system) -> None:
        super().bind(system)
        config = system.config
        # DPO's delegated flushes ride the same persist path (§8.2).
        self._flush_cycles = config.ns(config.persist_path_ns)
        self._capacity = config.dpo_persist_buffer_entries
        # The single-flush-at-a-time channel, shared by every core.
        self._channel = TimelineResource(width=1, name="dpo.flush")
        self._pending: List[Deque[int]] = [
            deque() for _ in range(config.n_cores)]
        self._log = PersistLog(system)

    def build_pmc_policy(self, index: int = 0) -> PMCPolicy:
        return DropWritebacksPolicy()

    # -------------------------------------------------------------- events

    def _evict_completed(self, core_id: int, now: int) -> None:
        pending = self._pending[core_id]
        while pending and pending[0] <= now:
            pending.popleft()

    def clwb(self, core_id: int, addr: int, now: int) -> int:
        """Enqueue a flush into the persist buffer.  Returns the time the
        CLWB retires from the core's perspective (buffer admission)."""
        hierarchy = self.system.hierarchy
        block = addr >> 6
        line = hierarchy.l1s[core_id].lookup(block, touch=False)
        if line is None:
            llc_line = hierarchy.llc.lookup(block, touch=False)
            data = dict(llc_line.data) if llc_line is not None else {}
        else:
            data = dict(line.data)
        self._evict_completed(core_id, now)
        accept = now + hierarchy.l1_lat
        if len(self._pending[core_id]) >= self._capacity:
            accept = max(accept, self._pending[core_id][0])
            self.stats.add("buffer_full_stalls")
        _start, finish = self._channel.reserve(accept, self._flush_cycles)
        self._pending[core_id].append(finish)
        self._log.persist_block_at(block * 64, data, finish,
                                   origin=f"drain:c{core_id}")
        self.stats.add("clwbs")
        return accept

    def _drained(self, core_id: int, now: int) -> int:
        pending = self._pending[core_id]
        return pending[-1] if pending else now

    def sfence(self, core_id: int, now: int) -> int:
        """Buffered strict persistency: the fence waits for this core's
        persist buffer to fully drain through the serial channel."""
        core = self.system.cores[core_id]
        done = max(now, self._drained(core_id, now),
                   core.store_queue.drain_complete_time(now))
        self.stats.add("sfences")
        self.stats.add("sfence_stall_cycles", done - now)
        return done

    def on_lock_op(self, core_id: int, now: int) -> int:
        """§8.2.2: DPO orders persists at volatile barriers too."""
        done = max(now, self._drained(core_id, now))
        self.stats.add("volatile_barrier_stalls", done - now)
        return done

    def quiesce_time(self, now: int) -> int:
        horizon = now
        for core_id in range(len(self._pending)):
            horizon = max(horizon, self._drained(core_id, now))
        return horizon

    def capture_state(self) -> dict:
        state = super().capture_state()
        state["channel"] = self._channel.capture_state()
        state["pending"] = [list(pending) for pending in self._pending]
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._channel.restore_state(state["channel"])
        self._pending = [deque(pending) for pending in state["pending"]]
