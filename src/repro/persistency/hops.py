"""HOPS (Nalli et al., ASPLOS'17): the epoch-persistency baseline with
custom light-weight fences (§8.1).

* Every PM store enters a per-core **persist buffer** (alongside the
  regular cache write) and drains to the PMC in FIFO -- hence epoch --
  order in the background.
* ``ofence`` marks an epoch boundary asynchronously: it never stalls.
* ``dfence`` is the durability fence: it stalls until this core's
  persist buffer has fully drained into the ADR domain.
* The PMC holds a **bloom filter** of addresses still in persist
  buffers; every PM load pays a lookup and is postponed on a (possibly
  false-positive) conflict -- the §8.2.2 cost that hurts HOPS on the
  load-heavy Mnemosyne benchmarks.
* An extra bit rides the L1<->LLC bus for the sticky-M state, adding a
  cycle of bus latency.

LLC dirty writebacks are dropped; the persist buffers carry the data.
"""

from __future__ import annotations

from typing import Dict, List

from ..isa import block_of
from ..mem import PMCPolicy
from ..sim import CapacityQueue
from .base import Design, PersistLog
from .dpo import DropWritebacksPolicy


class CountingBloom:
    """A counting bloom filter supporting insert/remove/query."""

    def __init__(self, bits: int, hashes: int):
        if bits < 8 or hashes < 1:
            raise ValueError("bloom filter too small")
        self.bits = bits
        self.hashes = hashes
        self._counters = [0] * bits
        self.inserts = 0

    def _slots(self, key: int):
        h = key * 0x9E3779B97F4A7C15 & (2 ** 64 - 1)
        for i in range(self.hashes):
            yield (h >> (i * 16)) % self.bits

    def insert(self, key: int) -> None:
        self.inserts += 1
        for slot in self._slots(key):
            self._counters[slot] += 1

    def remove(self, key: int) -> None:
        for slot in self._slots(key):
            if self._counters[slot] > 0:
                self._counters[slot] -= 1

    def query(self, key: int) -> bool:
        return all(self._counters[slot] > 0 for slot in self._slots(key))

    def capture_state(self) -> dict:
        return {"counters": list(self._counters),
                "inserts": self.inserts}

    def restore_state(self, state: dict) -> None:
        self._counters = list(state["counters"])
        self.inserts = state["inserts"]


class HOPSPMCPolicy(DropWritebacksPolicy):
    """Bloom-filter lookup on every PM read (§8.2.2)."""

    def __init__(self, bloom: CountingBloom, lookup_cycles: int,
                 conflict_delay: int):
        self.bloom = bloom
        self.lookup_cycles = lookup_cycles
        self.conflict_delay = conflict_delay
        self.lookups = 0
        self.conflicts = 0

    def read_delay(self, block: int, now: int) -> int:
        self.lookups += 1
        delay = self.lookup_cycles
        if self.bloom.query(block):
            self.conflicts += 1
            delay += self.conflict_delay
        return delay

    def capture_state(self) -> dict:
        # The bloom filter itself is captured by the HOPS design (it is
        # shared across multi-PMC policies).
        return {"lookups": self.lookups, "conflicts": self.conflicts}

    def restore_state(self, state: dict) -> None:
        self.lookups = state["lookups"]
        self.conflicts = state["conflicts"]


class HOPS(Design):
    """Epoch persistency with ofence/dfence and PMC-side bloom filter."""

    name = "HOPS"
    flavor = "hops"
    drops_llc_writebacks = True

    def bind(self, system) -> None:
        super().bind(system)
        config = system.config
        # §8.1/§8.2: the persist-buffer -> PMC path is "the persist path"
        # whose latency Figure 12 sweeps (20 ns in the main experiments).
        drain = (config.ns(config.persist_path_ns)
                 + max(1, config.ns(config.ring_slot_ns)))
        self._buffers: List[CapacityQueue] = [
            CapacityQueue(capacity=config.hops_persist_buffer_entries,
                          drain_latency=drain, width=1,
                          name=f"hops.pb[{i}]")
            for i in range(config.n_cores)]
        # Persist-buffer entries are cache lines: stores to a block whose
        # entry has not drained yet coalesce into it.
        self._open_blocks: List[Dict[int, int]] = [
            {} for _ in range(config.n_cores)]
        # Epoch (FIFO) durability clamp: coalescing into an earlier
        # pending line must not make a later store durable before stores
        # buffered ahead of it -- buffered *epoch* persistency orders
        # persists across epoch boundaries, and the undo-log protocol
        # (entry durable before its data) depends on it.  Found by the
        # RBTree/HOPS crash sweep.
        self._fifo_drain: List[int] = [0] * config.n_cores
        self.bloom = CountingBloom(config.hops_bloom_bits,
                                   config.hops_bloom_hashes)
        self._lookup_cycles = config.ns(config.hops_bloom_lookup_ns)
        self._conflict_delay = config.ns(
            config.extra.get("hops_conflict_delay_ns", 30.0))
        self._log = PersistLog(system)
        self._sticky_extra = config.ns(config.hops_sticky_bus_extra_ns)

    def build_pmc_policy(self, index: int = 0) -> PMCPolicy:
        # bind() runs before the system installs the policy; multi-PMC
        # systems share one bloom filter (it tracks per-core buffers).
        return HOPSPMCPolicy(self.bloom, self._lookup_cycles,
                             self._conflict_delay)

    @property
    def bus_extra_cycles(self) -> int:
        return self._sticky_extra

    # -------------------------------------------------------------- stores

    def store(self, core_id: int, addr: int, value: int, now: int,
              to_pm: bool = True, kind: str = "data",
              shared: bool = True) -> int:
        done = self.system.hierarchy.store(core_id, addr, value, now)
        if to_pm:
            block = block_of(addr)
            open_blocks = self._open_blocks[core_id]
            pending = open_blocks.get(block)
            if pending is not None and now < pending:
                # Coalesce into the line already sitting in the buffer.
                self.stats.add("pb_coalesced")
                drained = pending
            else:
                buffer = self._buffers[core_id]
                accept, drained = buffer.push(now)
                if accept > now:
                    self.stats.add("pb_full_stalls")
                    done = max(done, accept)
                open_blocks[block] = drained
                if len(open_blocks) > 1024:
                    self._open_blocks[core_id] = {
                        b: d for b, d in open_blocks.items() if d > now}
                self.bloom.insert(block)
                env = self.system.env
                remove_at = max(drained, env.now)
                env.call_at(remove_at,
                            lambda b=block: self.bloom.remove(b))
            if drained < self._fifo_drain[core_id]:
                drained = self._fifo_drain[core_id]
            self._fifo_drain[core_id] = drained
            self._log.persist_at(addr, value, drained,
                                 origin=f"drain:c{core_id}")
            self.stats.add("pm_stores")
        return done

    # -------------------------------------------------------------- fences

    def ofence(self, core_id: int, now: int) -> int:
        """Epoch boundary: asynchronous, one cycle to issue (§8.1)."""
        self.stats.add("ofences")
        return now + 1

    def dfence(self, core_id: int, now: int) -> int:
        """Durability fence: drain this core's persist buffer."""
        core = self.system.cores[core_id]
        done = max(now, self._buffers[core_id].drain_complete_time(now),
                   self._fifo_drain[core_id],
                   core.store_queue.drain_complete_time(now))
        self.stats.add("dfences")
        self.stats.add("dfence_stall_cycles", done - now)
        trace = self.system.env.trace
        if trace.enabled:
            # Durability fence retirement instant: the per-core chain
            # durable-state model pins every drain accepted at or before
            # this cycle (repro.crashstates.models).
            trace.instant("order", "fence", done,
                          args={"core": core_id}, cat="order")
        return done

    def quiesce_time(self, now: int) -> int:
        horizon = max([now] + list(self._fifo_drain))
        for buffer in self._buffers:
            horizon = max(horizon, buffer.drain_complete_time(now))
        return horizon

    def capture_state(self) -> dict:
        state = super().capture_state()
        state["buffers"] = [buffer.capture_state()
                            for buffer in self._buffers]
        state["open_blocks"] = [list(blocks.items())
                                for blocks in self._open_blocks]
        state["fifo_drain"] = list(self._fifo_drain)
        state["bloom"] = self.bloom.capture_state()
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        for buffer, sub in zip(self._buffers, state["buffers"]):
            buffer.restore_state(sub)
        self._open_blocks = [
            {block: drained for block, drained in blocks}
            for blocks in state["open_blocks"]]
        self._fifo_drain = list(state["fifo_drain"])
        self.bloom.restore_state(state["bloom"])
