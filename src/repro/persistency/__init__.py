"""Persistency-model designs: the three baselines plus helpers.

The proposed design itself lives in :mod:`repro.core.pmem_spec`.
"""

from .base import Design, PersistLog, UnsupportedOp
from .dpo import DPO, DropWritebacksPolicy
from .hops import HOPS, CountingBloom, HOPSPMCPolicy
from .intel_x86 import IntelX86Epoch
from .strandweaver import StrandWeaver

__all__ = [
    "CountingBloom", "DPO", "Design", "DropWritebacksPolicy", "HOPS",
    "HOPSPMCPolicy", "IntelX86Epoch", "PersistLog", "StrandWeaver",
    "UnsupportedOp",
]


def design_by_name(name: str) -> Design:
    """Factory used by the harness: 'IntelX86' | 'DPO' | 'HOPS' | 'PMEM-Spec'."""
    from ..core.pmem_spec import PMEMSpec
    designs = {
        "IntelX86": IntelX86Epoch,
        "DPO": DPO,
        "HOPS": HOPS,
        "PMEM-Spec": PMEMSpec,
        "PMEMSpec": PMEMSpec,
        "StrandWeaver": StrandWeaver,
    }
    if name not in designs:
        raise KeyError(f"unknown design {name!r}; "
                       f"choose from {sorted(designs)}")
    return designs[name]()
