"""Design abstraction: one class per evaluated persistency-model
implementation (§8.1's four designs).

A :class:`Design` owns the persistency-specific behaviour on both sides:

* **core side** -- what each lowered machine op costs and which state it
  touches (``store``, ``clwb``, the four fences, spec-assign/revoke).
  Every method is synchronous: it mutates timing resources and returns
  the completion time; the CPU core converts that into store-queue
  occupancy and stalls.
* **PMC side** -- via :meth:`build_pmc_policy`, the policy that decides
  what happens to writebacks/reads/persists arriving at the controller.

The compiler selects the instruction *flavor* (which lowering to emit)
from :attr:`Design.flavor`; the system builder wires a design to the
machine through :meth:`bind`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..mem import PMCPolicy
from ..sim import Counter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..system import System


class UnsupportedOp(RuntimeError):
    """An op foreign to this design's ISA reached the core (compiler bug)."""


class Design:
    """Base class; subclasses are IntelX86Epoch, DPO, HOPS, PMEMSpec."""

    name = "base"
    flavor = "x86"          # which compiler lowering this design executes
    drops_llc_writebacks = False
    uses_persist_path = False

    def __init__(self) -> None:
        self.system: "System" = None
        self.stats = Counter()

    # ------------------------------------------------------------- wiring

    def bind(self, system: "System") -> None:
        """Attach to a built system; called once before simulation."""
        self.system = system

    def build_pmc_policy(self, index: int = 0) -> PMCPolicy:
        """The policy installed into PM controller ``index`` (multi-PMC
        systems build one per controller; baselines persist everything)."""
        return PMCPolicy()

    @property
    def bus_extra_cycles(self) -> int:
        """Extra L1<->LLC bus cycles (HOPS' sticky bit, §8.2.2)."""
        return 0

    # -------------------------------------------------------------- stores

    def store(self, core_id: int, addr: int, value: int, now: int,
              to_pm: bool = True, kind: str = "data",
              shared: bool = True) -> int:
        """Perform a committed store; returns its completion time."""
        return self.system.hierarchy.store(core_id, addr, value, now)

    # ----------------------------------------------------- flushes/fences

    def clwb(self, core_id: int, addr: int, now: int) -> int:
        raise UnsupportedOp(f"{self.name} does not implement clwb")

    def sfence(self, core_id: int, now: int) -> int:
        raise UnsupportedOp(f"{self.name} does not implement sfence")

    def ofence(self, core_id: int, now: int) -> int:
        raise UnsupportedOp(f"{self.name} does not implement ofence")

    def dfence(self, core_id: int, now: int) -> int:
        raise UnsupportedOp(f"{self.name} does not implement dfence")

    def spec_barrier(self, core_id: int, now: int) -> int:
        raise UnsupportedOp(f"{self.name} does not implement spec_barrier")

    def spec_assign(self, core_id: int, now: int) -> int:
        raise UnsupportedOp(f"{self.name} does not implement spec_assign")

    def spec_revoke(self, core_id: int, now: int) -> int:
        raise UnsupportedOp(f"{self.name} does not implement spec_revoke")

    def new_strand(self, core_id: int, now: int) -> int:
        raise UnsupportedOp(f"{self.name} does not implement new_strand")

    def strand_barrier(self, core_id: int, now: int) -> int:
        raise UnsupportedOp(f"{self.name} does not implement strand_barrier")

    def join_strand(self, core_id: int, now: int) -> int:
        raise UnsupportedOp(f"{self.name} does not implement join_strand")

    # ----------------------------------------------------- program events

    def on_lock_op(self, core_id: int, now: int) -> int:
        """Hook for volatile synchronisation ops.  DPO orders persists at
        *every* barrier inherited in the program (§8.2.2); other designs
        return ``now`` unchanged."""
        return now

    # ------------------------------------------------------------ queries

    def durable_value(self, addr: int) -> int:
        """Persisted value (crash-test hook)."""
        return self.system.device.read(addr)

    def quiesce_time(self, now: int) -> int:
        """Time by which all in-flight persistence work has landed; used
        at end-of-run before crash snapshots and validation."""
        return now

    # -------------------------------------------------------- snapshotting

    def capture_state(self) -> dict:
        """Stats only in the base; stateful designs extend the dict."""
        return {"stats": self.stats.capture_state()}

    def restore_state(self, state: dict) -> None:
        self.stats.restore_state(state["stats"])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} design>"


class PersistLog:
    """Shared helper: schedule device persists for buffered designs.

    HOPS and DPO buffer (addr, value) pairs and persist them when their
    buffers drain; this helper schedules the device update at the drain
    acceptance time so crash snapshots observe buffered-but-undrained
    data as *lost* -- the semantics persist buffers actually have.
    """

    def __init__(self, system: "System"):
        self.system = system

    def persist_at(self, addr: int, value: int, when: int,
                   origin: str = "drain") -> None:
        env = self.system.env
        device = self.system.device
        if when <= env.now:
            device.persist_store(addr, value, env.now, origin=origin)
        else:
            env.call_at(when, lambda: device.persist_store(
                addr, value, when, origin=origin))

    def persist_block_at(self, block_addr: int, data: Dict[int, int],
                         when: int, origin: str = "drain") -> None:
        env = self.system.env
        device = self.system.device
        snapshot = dict(data)
        if when <= env.now:
            device.persist_block(block_addr, snapshot, env.now,
                                 origin=origin)
        else:
            env.call_at(when, lambda: device.persist_block(
                block_addr, snapshot, when, origin=origin))
