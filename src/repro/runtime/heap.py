"""Persistent-heap layout and allocation.

A single address space is shared by all workloads:

* ``DATA_BASE`` -- persistent application data (bump-allocated),
* ``LOG_BASE`` -- per-thread undo-log regions (fixed stride), laid out so
  a recovery scan can find every thread's log without metadata.

Addresses are plain integers on an 8-byte word grid; the cache-block
grid is 64 bytes (:data:`repro.isa.CACHE_BLOCK_BYTES`).
"""

from __future__ import annotations

from typing import Dict, List

DATA_BASE = 0x1000_0000
LOG_BASE = 0x4000_0000
# Per-thread log stride: ~1 MiB plus one page of stagger.  The stagger is
# load-bearing: a stride that is an exact multiple of the LLC's set span
# (16384 sets x 64 B = 1 MiB for Table 3's LLC) maps every thread's log
# blocks onto the SAME cache sets, and past 16 threads (the LLC's
# associativity) the logs thrash -- which, on writeback-dropping designs,
# floods the speculation buffer with eviction entries and collapses
# multi-core throughput (found by the 32-core Figure 10 sweep).
LOG_REGION_BYTES = (1 << 20) + 4096
WORD_BYTES = 8


class AllocationError(MemoryError):
    """The bump allocator ran past its region."""


class PersistentHeap:
    """Bump allocator for persistent application data.

    Allocations can be labelled; :meth:`region` returns the labelled
    ranges so tests and crash validators can reason about layout.
    """

    def __init__(self, base: int = DATA_BASE,
                 limit: int = LOG_BASE):
        self.base = base
        self.limit = limit
        self._next = base
        self._regions: Dict[str, List[int]] = {}

    def alloc(self, nbytes: int, label: str = "", align: int = WORD_BYTES) -> int:
        """Allocate ``nbytes``; returns the base address."""
        if nbytes <= 0:
            raise AllocationError(f"bad allocation size {nbytes}")
        if align & (align - 1):
            raise AllocationError(f"alignment {align} not a power of two")
        start = (self._next + align - 1) & ~(align - 1)
        end = start + nbytes
        if end > self.limit:
            raise AllocationError(
                f"persistent heap exhausted ({end - self.base} bytes)")
        self._next = end
        if label:
            self._regions.setdefault(label, []).append(start)
        return start

    def alloc_words(self, n_words: int, label: str = "") -> int:
        return self.alloc(n_words * WORD_BYTES, label=label)

    def alloc_block(self, label: str = "") -> int:
        """One cache-block-aligned 64-byte allocation (the paper's
        microbenchmark FASEs update 64 B of data)."""
        return self.alloc(64, label=label, align=64)

    def region(self, label: str) -> List[int]:
        return list(self._regions.get(label, []))

    @property
    def used_bytes(self) -> int:
        return self._next - self.base

    def in_data_region(self, addr: int) -> bool:
        return self.base <= addr < self._next


def log_region_base(thread_id: int) -> int:
    """Base address of thread ``thread_id``'s undo-log region."""
    if thread_id < 0:
        raise ValueError("negative thread id")
    return LOG_BASE + thread_id * LOG_REGION_BYTES


def is_log_address(addr: int) -> bool:
    return addr >= LOG_BASE


def thread_of_log_address(addr: int) -> int:
    if not is_log_address(addr):
        raise ValueError(f"0x{addr:x} is not a log address")
    return (addr - LOG_BASE) // LOG_REGION_BYTES
