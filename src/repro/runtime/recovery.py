"""Post-crash recovery: scan every thread's undo log in the persisted
image and roll uncommitted FASEs back (§2.1's failure-atomicity
contract, exercised by the crash-injection tests)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from .heap import is_log_address
from .undo_log import recover_all


class RecoveryReport:
    """Outcome of one recovery run."""

    def __init__(self, image: Dict[int, int],
                 applied: Dict[int, List[Tuple[int, int]]]):
        self.image = image
        self.applied = applied

    @property
    def rolled_back_threads(self) -> List[int]:
        return [tid for tid, writes in self.applied.items() if writes]

    @property
    def total_undo_writes(self) -> int:
        return sum(len(writes) for writes in self.applied.values())

    def data_image(self) -> Dict[int, int]:
        """The recovered image with log-region addresses stripped."""
        return {addr: value for addr, value in self.image.items()
                if not is_log_address(addr)}

    def __repr__(self) -> str:
        return (f"RecoveryReport(rolled_back={self.rolled_back_threads}, "
                f"undo_writes={self.total_undo_writes})")


def run_recovery(persisted_image: Dict[int, int], n_threads: int,
                 log_mode: str = "undo") -> RecoveryReport:
    """The failure-recovery protocol run after (virtual or real) power
    failure: one log scan per thread over a *copy* of the image
    (``log_mode`` must match the lowering that produced the logs)."""
    image = dict(persisted_image)
    if log_mode == "redo":
        from .redo_log import recover_redo_all
        applied = recover_redo_all(image, n_threads)
    elif log_mode == "undo":
        applied = recover_all(image, n_threads)
    else:
        raise ValueError(f"unknown log mode {log_mode!r}")
    return RecoveryReport(image, applied)
