"""Crash injection: power-fail a running system and validate recovery.

The failure-atomicity contract (§2.1) says a crash at *any* cycle must
recover to a state where every FASE is all-or-nothing.  These utilities
run a workload under a design, cut power at a chosen cycle, snapshot the
PM device (exactly what ADR preserves), run the undo-log recovery
protocol, and let the workload check its structural invariants on the
recovered data image.

PMEM-Spec treats misspeculation as a *virtual* power failure (§4.4);
these are the real ones, exercising the same log and recovery code.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Type

from ..config import SystemConfig, table3_config
from .recovery import RecoveryReport, run_recovery


class CrashOutcome:
    """Result of one crash-injection run."""

    def __init__(self, workload_name: str, design_name: str,
                 crash_cycle: int, total_cycles: int,
                 report: RecoveryReport, violations: List[str],
                 commits_before_crash: int):
        self.workload_name = workload_name
        self.design_name = design_name
        self.crash_cycle = crash_cycle
        self.total_cycles = total_cycles
        self.report = report
        self.violations = violations
        self.commits_before_crash = commits_before_crash

    @property
    def consistent(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:
        status = "OK" if self.consistent else f"{len(self.violations)} BAD"
        return (f"CrashOutcome({self.workload_name}/{self.design_name} "
                f"@{self.crash_cycle}/{self.total_cycles}: {status})")


def build_crash_system(workload_cls: Type, design_name: str,
                       n_threads: int, fases_per_thread: int, seed: int,
                       config: Optional[SystemConfig] = None,
                       log_mode: str = "undo", tracer=None,
                       prebuilt=None):
    """One build path for every crash-injection entry point: returns the
    ``(workload, system)`` pair ready to run (the validation campaign
    reuses this with a tracer attached, so a measured uninterrupted run
    and the crashed run are built identically by construction).

    ``prebuilt`` is an optional ``(workload, program)`` pair from a
    previous build with the same (workload_cls, n_threads,
    fases_per_thread, seed): program materialisation dominates build
    time at large fase counts, and both objects are immutable after
    ``build()`` (the system copies the initial heap), so callers running
    many trials of one cell can pregenerate once.
    """
    from ..persistency import design_by_name
    from ..system import build_system
    if prebuilt is not None:
        workload, program = prebuilt
    else:
        workload = workload_cls(seed=seed)
        program = workload.build(n_threads, fases_per_thread)
    cfg = config or table3_config(n_cores=n_threads)
    system = build_system(program, design_by_name(design_name), cfg,
                          log_mode=log_mode, tracer=tracer)
    return workload, system


def measure_run_cycles(workload_cls: Type, design_name: str,
                       n_threads: int, fases_per_thread: int,
                       seed: int,
                       config: Optional[SystemConfig] = None,
                       log_mode: str = "undo") -> int:
    """Length of an uninterrupted run (to place crash points inside it)."""
    _workload, system = build_crash_system(
        workload_cls, design_name, n_threads, fases_per_thread, seed,
        config, log_mode=log_mode)
    return system.run().cycles


def run_with_crash(workload_cls: Type, design_name: str, crash_cycle: int,
                   n_threads: int = 2, fases_per_thread: int = 20,
                   seed: int = 42,
                   config: Optional[SystemConfig] = None,
                   log_mode: str = "undo",
                   total_cycles: Optional[int] = None) -> CrashOutcome:
    """Run the workload, cut power at ``crash_cycle``, recover, validate.

    ``total_cycles`` is the uninterrupted run length; pass it when known
    (e.g. from a sweep that measured it once) to avoid re-measuring --
    otherwise it is measured here so the outcome reports the true total
    rather than the crash cycle itself.
    """
    if total_cycles is None:
        total_cycles = measure_run_cycles(
            workload_cls, design_name, n_threads, fases_per_thread, seed,
            config, log_mode=log_mode)
    workload, system = build_crash_system(
        workload_cls, design_name, n_threads, fases_per_thread, seed,
        config, log_mode=log_mode)
    system.run(until=crash_cycle)
    commits = system.runtime.total_commits
    snapshot = system.persisted_snapshot()
    report = run_recovery(snapshot, n_threads, log_mode=log_mode)
    violations = workload.validate_recovered(report.data_image())
    return CrashOutcome(workload.name, design_name, crash_cycle,
                        total_cycles, report, violations, commits)


def crash_sweep(workload_cls: Type, design_name: str,
                crash_points: Optional[Sequence[int]] = None,
                n_points: int = 10, n_threads: int = 2,
                fases_per_thread: int = 20, seed: int = 42,
                config: Optional[SystemConfig] = None,
                log_mode: str = "undo") -> List[CrashOutcome]:
    """Crash at several points spread across one run's duration."""
    total = measure_run_cycles(workload_cls, design_name, n_threads,
                               fases_per_thread, seed, config,
                               log_mode=log_mode)
    if crash_points is None:
        step = max(1, total // (n_points + 1))
        crash_points = [step * (index + 1) for index in range(n_points)]
    outcomes = []
    for crash_cycle in crash_points:
        outcomes.append(run_with_crash(
            workload_cls, design_name, crash_cycle, n_threads,
            fases_per_thread, seed, config, log_mode=log_mode,
            total_cycles=total))
    return outcomes
