"""Per-thread undo log: layout, write protocol, and recovery scan.

The log uses *epoch-stamped, self-validating entries* (the standard
trick -- cf. Mnemosyne's torn-bit logs -- for avoiding an extra ordering
point between log entries and a separate count word):

* the first word of a thread's region is its **epoch**: the number of
  FASEs this thread has committed.  A FASE's entries are stamped with
  the epoch value current when it runs;
* each 16-byte entry is ``[old_value, stamped_target]`` where
  ``stamped_target = epoch << STAMP_SHIFT | target_address``.  The
  stamped word is written *last*, so an entry is valid exactly when its
  stamp matches the region's epoch;
* at commit, after the FASE's data is durable, the epoch is incremented
  -- which atomically invalidates every entry.

Ordering requirements and who provides them:

1. an entry is durable before its data store persists -- the
   per-group ordering point (SFENCE / ofence / persist-path FIFO);
2. the epoch bump is durable only after the FASE's data -- the commit
   ordering point (SFENCE / dfence / spec-barrier).

Nothing orders entries against each other: a non-persisted entry simply
fails its stamp check, and (1) guarantees its data write cannot have
persisted either, so skipping it is sound.

Aborts do **not** bump the epoch: rollback rewrites the old values and
leaves the entries live.  Undo application is idempotent, so a crash
anywhere around an abort/retry still recovers to the pre-FASE state.

Layout inside a thread's log region (see :mod:`repro.runtime.heap`)::

    +0    epoch word
    +64   entry[0]: old value
    +72   entry[0]: stamped target   (written last: the validity marker)
    +80   entry[1]: old value
    ...
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .heap import LOG_REGION_BYTES, log_region_base

ENTRY_STRIDE = 16      # two 8-byte words per entry
ENTRIES_OFFSET = 64    # keep the epoch word in its own cache block
STAMP_SHIFT = 40       # target addresses fit comfortably below 2^40
ADDRESS_MASK = (1 << STAMP_SHIFT) - 1


def stamp_target(epoch: int, target: int) -> int:
    """Pack (epoch, target address) into one atomically-written word."""
    if not 0 <= target <= ADDRESS_MASK:
        raise ValueError(f"target address 0x{target:x} out of stamp range")
    if epoch < 0:
        raise ValueError("negative epoch")
    return (epoch << STAMP_SHIFT) | target


def unpack_stamp(word: int) -> Tuple[int, int]:
    """Inverse of :func:`stamp_target`: returns ``(epoch, target)``."""
    return word >> STAMP_SHIFT, word & ADDRESS_MASK


class UndoLogLayout:
    """Address arithmetic for one thread's undo log."""

    def __init__(self, thread_id: int):
        self.thread_id = thread_id
        self.base = log_region_base(thread_id)
        self.max_entries = (LOG_REGION_BYTES - ENTRIES_OFFSET) // ENTRY_STRIDE

    @property
    def epoch_addr(self) -> int:
        return self.base

    def entry_old_addr(self, index: int) -> int:
        self._check(index)
        return self.base + ENTRIES_OFFSET + index * ENTRY_STRIDE

    def entry_target_addr(self, index: int) -> int:
        return self.entry_old_addr(index) + 8

    def _check(self, index: int) -> None:
        if not 0 <= index < self.max_entries:
            raise IndexError(f"log entry {index} out of range")


class UndoLog:
    """Runtime-side mirror of one thread's undo log (volatile bookkeeping;
    the durable copy is whatever reached the PM device)."""

    def __init__(self, thread_id: int):
        self.layout = UndoLogLayout(thread_id)
        self._records: List[Tuple[int, int]] = []
        self.appends = 0
        self.truncations = 0

    def open_scope(self) -> None:
        """A new FASE starts: the previous scope must have been closed."""
        self._records.clear()

    def append(self, target: int, old_value: int) -> int:
        """Record one undo pair; returns its entry index."""
        index = len(self._records)
        self.layout._check(index)
        self._records.append((target, old_value))
        self.appends += 1
        return index

    def truncate(self) -> None:
        """FASE committed: drop the records (the epoch-bump machine op is
        the caller's duty)."""
        self._records.clear()
        self.truncations += 1

    @property
    def records(self) -> List[Tuple[int, int]]:
        return list(self._records)

    def rollback_writes(self) -> List[Tuple[int, int]]:
        """(addr, old_value) pairs to re-write, newest first -- the abort
        handler's write list."""
        return list(reversed(self._records))

    def capture_state(self) -> dict:
        return {"records": [list(record) for record in self._records],
                "appends": self.appends,
                "truncations": self.truncations}

    def restore_state(self, state: dict) -> None:
        self._records = [(target, old) for target, old in state["records"]]
        self.appends = state["appends"]
        self.truncations = state["truncations"]


def recover(image: Dict[int, int], thread_id: int) -> List[Tuple[int, int]]:
    """Apply one thread's undo log against a persisted image, in place.

    Returns the (addr, restored_value) pairs applied.  Live entries are
    the contiguous prefix whose stamps match the region's epoch; they are
    applied newest-first so multiple writes to one address inside a FASE
    unwind to the true pre-FASE value.
    """
    layout = UndoLogLayout(thread_id)
    epoch = image.get(layout.epoch_addr, 0)
    if epoch < 0:
        raise ValueError(
            f"corrupt undo-log epoch for thread {thread_id}: {epoch}")
    live: List[Tuple[int, int]] = []
    for index in range(layout.max_entries):
        stamped = image.get(layout.entry_target_addr(index))
        if stamped is None:
            break
        entry_epoch, target = unpack_stamp(stamped)
        if entry_epoch != epoch:
            break
        if target >= layout.base:
            raise ValueError(
                f"undo-log entry {index} of thread {thread_id} targets "
                f"the log region itself (0x{target:x})")
        old = image.get(layout.entry_old_addr(index), 0)
        live.append((target, old))
    applied: List[Tuple[int, int]] = []
    for target, old in reversed(live):
        image[target] = old
        applied.append((target, old))
    return applied


def recover_all(image: Dict[int, int],
                n_threads: int) -> Dict[int, List[Tuple[int, int]]]:
    """Run recovery for every thread; returns per-thread applied lists."""
    return {tid: recover(image, tid) for tid in range(n_threads)}
