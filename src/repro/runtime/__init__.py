"""Failure-atomic runtime: heap, undo logging, FASEs, recovery."""

from .heap import (
    DATA_BASE,
    LOG_BASE,
    LOG_REGION_BYTES,
    AllocationError,
    PersistentHeap,
    is_log_address,
    log_region_base,
    thread_of_log_address,
)
from .crash import (
    CrashOutcome,
    build_crash_system,
    crash_sweep,
    measure_run_cycles,
    run_with_crash,
)
from .recovery import RecoveryReport, run_recovery
from .redo_log import commit_word_addr, recover_redo, recover_redo_all
from .transaction import EAGER, LAZY, FailureAtomicRuntime, ThreadState
from .undo_log import UndoLog, UndoLogLayout, recover, recover_all

__all__ = [
    "AllocationError", "CrashOutcome", "build_crash_system", "crash_sweep",
    "measure_run_cycles", "run_with_crash", "DATA_BASE", "EAGER", "FailureAtomicRuntime",
    "LAZY", "LOG_BASE", "LOG_REGION_BYTES", "PersistentHeap",
    "RecoveryReport", "ThreadState", "UndoLog", "UndoLogLayout",
    "commit_word_addr", "recover_redo", "recover_redo_all",
    "is_log_address", "log_region_base", "recover", "recover_all",
    "run_recovery", "thread_of_log_address",
]
