"""Redo logging: the alternative write-ahead protocol (cf. Mnemosyne's
raw-word log, DudeTM's decoupled redo [31]).

Where undo logging persists *old* values before updating data in place,
redo logging keeps uncommitted data out of PM entirely:

1. during the FASE, every write appends a redo entry ``[new_value,
   stamped_target]`` to the log; the in-place update stays *volatile*
   (cache-only -- legal exactly on the designs that drop LLC dirty
   writebacks: PMEM-Spec, HOPS, StrandWeaver);
2. at commit, the **commit word** is set to the epoch (the log is now
   complete), the in-place data writes are replayed persistently, and
   the epoch word is bumped (the log is consumed);
3. recovery: ``commit == epoch`` means the FASE committed but its
   replay may be partial -- replay every stamped entry forward (replay
   is idempotent) and bump the epoch.  Any other state means the FASE
   never committed, and since in-place data never persisted early,
   there is nothing to roll back.

Under a FIFO persistence channel (PMEM-Spec's persist path, HOPS'
persist buffer, a StrandWeaver strand) every step above is already
ordered, so the whole FASE needs **no intra-FASE ordering points at
all** -- only the final durability barrier.  That is the undo-vs-redo
ablation `bench_ablations` measures.

Layout: shares :class:`~repro.runtime.undo_log.UndoLogLayout` geometry;
the commit word is the second word of the header block (the epoch word
is the first).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .undo_log import UndoLogLayout, unpack_stamp

COMMIT_WORD_OFFSET = 8


def commit_word_addr(thread_id: int) -> int:
    return UndoLogLayout(thread_id).epoch_addr + COMMIT_WORD_OFFSET


def recover_redo(image: Dict[int, int],
                 thread_id: int) -> List[Tuple[int, int]]:
    """Redo recovery for one thread, in place; returns applied writes.

    Replay fires only in the ``commit == epoch`` window (log complete,
    epoch not yet consumed); it applies entries *forward* so the last
    write to an address wins, then consumes the log by bumping the
    epoch.
    """
    layout = UndoLogLayout(thread_id)
    epoch = image.get(layout.epoch_addr, 0)
    commit = image.get(commit_word_addr(thread_id), -1)
    if epoch < 0:
        raise ValueError(
            f"corrupt redo-log epoch for thread {thread_id}: {epoch}")
    if commit != epoch:
        return []
    applied: List[Tuple[int, int]] = []
    for index in range(layout.max_entries):
        stamped = image.get(layout.entry_target_addr(index))
        if stamped is None:
            break
        entry_epoch, target = unpack_stamp(stamped)
        if entry_epoch != epoch:
            break
        if target >= layout.base:
            raise ValueError(
                f"redo-log entry {index} of thread {thread_id} targets "
                f"the log region itself (0x{target:x})")
        value = image.get(layout.entry_old_addr(index), 0)
        image[target] = value
        applied.append((target, value))
    image[layout.epoch_addr] = epoch + 1
    return applied


def recover_redo_all(image: Dict[int, int],
                     n_threads: int) -> Dict[int, List[Tuple[int, int]]]:
    return {tid: recover_redo(image, tid) for tid in range(n_threads)}
