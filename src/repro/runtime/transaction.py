"""The failure-atomic runtime (§6.1.2).

Tracks per-thread FASE state, owns the undo logs, and implements the
misspeculation-recovery contract the paper requires of the runtime:

* an **abort handler** that erases intermediate data and restarts the
  interrupted FASE (the core replays the lowered ops; this class hands
  it the undo-write list);
* registration with the OS interrupt layer to receive misspeculation
  signals;
* a **misspeculation handler** that sets the per-thread misspeculation
  flags of every thread currently inside a FASE (§6.2.1) -- the hardware
  cannot attribute blame, so recovery is conservative;
* **lazy** recovery checks the flag at the FASE commit point; **eager**
  recovery broadcasts so threads abort at their next instruction
  boundary (§6.2.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.events import MisspeculationEvent
from ..sim import Counter
from .undo_log import UndoLog

LAZY = "lazy"
EAGER = "eager"


class ThreadState:
    """Runtime bookkeeping for one thread."""

    __slots__ = ("thread_id", "in_fase", "fase_id", "misspec_flag",
                 "undo", "commits", "aborts")

    def __init__(self, thread_id: int):
        self.thread_id = thread_id
        self.in_fase = False
        self.fase_id: Optional[int] = None
        self.misspec_flag = False
        self.undo = UndoLog(thread_id)
        self.commits = 0
        self.aborts = 0


class FailureAtomicRuntime:
    """Undo-logging failure-atomic runtime with misspeculation recovery."""

    def __init__(self, n_threads: int, recovery_mode: str = LAZY):
        if recovery_mode not in (LAZY, EAGER):
            raise ValueError(f"unknown recovery mode {recovery_mode!r}")
        self.recovery_mode = recovery_mode
        self.threads: List[ThreadState] = [
            ThreadState(tid) for tid in range(n_threads)]
        self.stats = Counter()
        # (thread_id, fase_id, commit_time): analysis + crash oracles.
        self.commit_log: List[Tuple[int, int, int]] = []
        self.misspec_events: List[MisspeculationEvent] = []

    # -------------------------------------------------------- FASE control

    def fase_begin(self, thread_id: int, fase_id: int, now: int) -> None:
        state = self.threads[thread_id]
        if state.in_fase:
            raise RuntimeError(
                f"thread {thread_id} began FASE {fase_id} while FASE "
                f"{state.fase_id} is open")
        state.in_fase = True
        state.fase_id = fase_id
        # §6.2.1: a thread clears its own flag when it begins a new FASE.
        state.misspec_flag = False
        state.undo.open_scope()
        self.stats.add("fases_started")

    def log_write(self, thread_id: int, target: int, old_value: int) -> int:
        """Record an undo pair; returns the log entry index whose machine
        stores the compiler addressed via :class:`UndoLogLayout`."""
        state = self.threads[thread_id]
        if not state.in_fase:
            raise RuntimeError(
                f"thread {thread_id} logged a write outside any FASE")
        return state.undo.append(target, old_value)

    def must_abort(self, thread_id: int, at_boundary: bool) -> bool:
        """Should this thread abort now?

        ``at_boundary`` is True at the FASE commit point (lazy recovery's
        only check site); eager recovery also aborts mid-FASE.
        """
        state = self.threads[thread_id]
        if not (state.in_fase and state.misspec_flag):
            return False
        return at_boundary or self.recovery_mode == EAGER

    def fase_commit(self, thread_id: int, now: int) -> None:
        state = self.threads[thread_id]
        if not state.in_fase:
            raise RuntimeError(f"thread {thread_id} committed outside a FASE")
        state.undo.truncate()
        state.in_fase = False
        state.commits += 1
        self.commit_log.append((thread_id, state.fase_id, now))
        state.fase_id = None
        self.stats.add("commits")

    def fase_abort(self, thread_id: int, now: int) -> List[Tuple[int, int]]:
        """Abort handler: returns the (addr, old_value) rollback writes,
        newest first.  The core replays them through the store path and
        then restarts the FASE from the beginning."""
        state = self.threads[thread_id]
        if not state.in_fase:
            raise RuntimeError(f"thread {thread_id} aborted outside a FASE")
        writes = state.undo.rollback_writes()
        state.undo.open_scope()
        state.in_fase = False
        state.aborts += 1
        state.fase_id = None
        self.stats.add("aborts")
        return writes

    # ----------------------------------------------------- misspeculation

    def on_misspeculation(self, event: MisspeculationEvent, now: int) -> int:
        """The OS-relayed misspeculation signal (§6.2.1).  Flags every
        thread currently executing a FASE; returns how many were flagged."""
        self.misspec_events.append(event)
        self.stats.add(f"misspec_{event.kind}")
        flagged = 0
        for state in self.threads:
            if state.in_fase and not state.misspec_flag:
                state.misspec_flag = True
                flagged += 1
        self.stats.add("threads_flagged", flagged)
        return flagged

    # ------------------------------------------------------------ queries

    @property
    def total_commits(self) -> int:
        return sum(state.commits for state in self.threads)

    @property
    def total_aborts(self) -> int:
        return sum(state.aborts for state in self.threads)

    def in_fase_threads(self) -> List[int]:
        return [s.thread_id for s in self.threads if s.in_fase]

    def thread_stats(self) -> Dict[int, Dict[str, int]]:
        return {s.thread_id: {"commits": s.commits, "aborts": s.aborts}
                for s in self.threads}

    # -------------------------------------------------------- snapshotting

    def capture_state(self) -> dict:
        return {"threads": [{"in_fase": s.in_fase, "fase_id": s.fase_id,
                             "misspec_flag": s.misspec_flag,
                             "commits": s.commits, "aborts": s.aborts,
                             "undo": s.undo.capture_state()}
                            for s in self.threads],
                "stats": self.stats.capture_state(),
                "commit_log": [list(entry) for entry in self.commit_log],
                "misspec_events": [
                    {"kind": e.kind, "block": e.block,
                     "core_id": e.core_id, "time": e.time,
                     "spec_id": e.spec_id, "persist_time": e.persist_time}
                    for e in self.misspec_events]}

    def restore_state(self, state: dict) -> None:
        for thread, sub in zip(self.threads, state["threads"]):
            thread.in_fase = sub["in_fase"]
            thread.fase_id = sub["fase_id"]
            thread.misspec_flag = sub["misspec_flag"]
            thread.commits = sub["commits"]
            thread.aborts = sub["aborts"]
            thread.undo.restore_state(sub["undo"])
        self.stats.restore_state(state["stats"])
        self.commit_log = [tuple(entry) for entry in state["commit_log"]]
        self.misspec_events = [
            MisspeculationEvent(kind=e["kind"], block=e["block"],
                                core_id=e["core_id"], time=e["time"],
                                spec_id=e["spec_id"],
                                persist_time=e["persist_time"])
            for e in state["misspec_events"]]
