"""PMEM-Spec reproduction: persistent memory speculation (ASPLOS 2021).

Public API tour
---------------
>>> from repro import build_system, design_by_name, table3_config
>>> from repro.workloads import workload_by_name
>>> program = workload_by_name("tpcc", seed=42).build(8, 50)
>>> system = build_system(program, design_by_name("PMEM-Spec"),
...                       table3_config(n_cores=8))
>>> result = system.run()

Subpackages: :mod:`repro.sim` (DES kernel), :mod:`repro.isa`
(instructions/programs), :mod:`repro.mem` (caches/PMC/paths),
:mod:`repro.cpu` (cores), :mod:`repro.persistency` (baseline designs),
:mod:`repro.core` (the PMEM-Spec contribution), :mod:`repro.runtime`
(failure atomicity + crash injection), :mod:`repro.oslayer`,
:mod:`repro.compiler`, :mod:`repro.workloads` (Table 4 benchmarks),
:mod:`repro.harness` (per-figure experiments).
"""

from .config import SystemConfig, table3_config
from .persistency import design_by_name
from .system import SimResult, System, build_system

__version__ = "1.0.0"

__all__ = [
    "SimResult",
    "System",
    "SystemConfig",
    "build_system",
    "design_by_name",
    "table3_config",
    "__version__",
]
