"""Misspeculation event records flowing from hardware to OS to runtime."""

from __future__ import annotations


class MisspeculationEvent:
    """Raised (as data, not an exception) by the speculation buffer when
    an ordering violation is detected (§5).  ``kind`` is ``"load"`` (stale
    read) or ``"store"`` (inter-thread persist-order violation);
    ``block`` is the cache-block number; ``core_id`` is the core whose
    message exposed the violation (the hardware cannot attribute blame,
    which is why recovery rolls back *all* in-FASE threads, §6.2)."""

    __slots__ = ("kind", "block", "core_id", "time")

    def __init__(self, kind: str, block: int, core_id: int, time: int):
        if kind not in ("load", "store"):
            raise ValueError(f"unknown misspeculation kind {kind!r}")
        self.kind = kind
        self.block = block
        self.core_id = core_id
        self.time = time

    @property
    def physical_address(self) -> int:
        """Block-aligned physical address stored into the OS-designated
        space by the hardware (§6.1.1)."""
        return self.block * 64

    def __repr__(self) -> str:
        return (f"MisspeculationEvent({self.kind}, block={self.block}, "
                f"core={self.core_id}, t={self.time})")
