"""Misspeculation event records flowing from hardware to OS to runtime."""

from __future__ import annotations

from typing import Optional


class MisspeculationEvent:
    """Raised (as data, not an exception) by the speculation buffer when
    an ordering violation is detected (§5).  ``kind`` is ``"load"`` (stale
    read) or ``"store"`` (inter-thread persist-order violation);
    ``block`` is the cache-block number; ``core_id`` is the core whose
    message exposed the violation (the hardware cannot attribute blame,
    which is why recovery rolls back *all* in-FASE threads, §6.2).

    ``spec_id`` is the speculation ID carried by the persist-path
    message that exposed the violation (0 when the message was
    untagged), and ``persist_time`` is that message's PMC acceptance
    time -- the persist-path timestamp.  Traces and the §8.4
    misspeculation-rate analysis both read these fields, so the
    identifiers they report agree by construction.
    """

    __slots__ = ("kind", "block", "core_id", "time", "spec_id",
                 "persist_time")

    def __init__(self, kind: str, block: int, core_id: int, time: int,
                 spec_id: int = 0, persist_time: Optional[int] = None):
        if kind not in ("load", "store"):
            raise ValueError(f"unknown misspeculation kind {kind!r}")
        self.kind = kind
        self.block = block
        self.core_id = core_id
        self.time = time
        self.spec_id = spec_id
        self.persist_time = time if persist_time is None else persist_time

    @property
    def physical_address(self) -> int:
        """Block-aligned physical address stored into the OS-designated
        space by the hardware (§6.1.1)."""
        return self.block * 64

    def identifiers(self) -> dict:
        """The common identifier payload traces and reports share."""
        return {"kind": self.kind, "block": self.block,
                "core": self.core_id, "spec_id": self.spec_id,
                "persist_time": self.persist_time}

    def __repr__(self) -> str:
        tag = f", spec_id={self.spec_id}" if self.spec_id else ""
        return (f"MisspeculationEvent({self.kind}, block={self.block}, "
                f"core={self.core_id}, t={self.time}{tag})")
