"""Per-core speculation-ID registers (§5.2.2).

``spec-assign`` reads the global monotonically increasing counter into
the core's dedicated register and increments the counter; every PM store
that leaves the store queue while the register is non-zero is tagged
with its value.  ``spec-revoke`` clears the register at critical-section
exit.  The register is saved/restored across context switches so a
thread scheduled out inside a critical section keeps tagging correctly
after it is scheduled back in (§5.2.2's virtualisation requirement);
:class:`repro.oslayer.process.ContextSwitcher` exercises that path.
"""

from __future__ import annotations

from typing import Dict, List

from ..mem import SpecIdCounter


class SpecIdRegister:
    """The dedicated per-core register holding the active speculation ID."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = SpecIdCounter.UNTAGGED

    @property
    def active(self) -> bool:
        return self.value != SpecIdCounter.UNTAGGED

    def clear(self) -> None:
        self.value = SpecIdCounter.UNTAGGED


class SpecIdFile:
    """All cores' spec-ID registers plus the shared counter."""

    def __init__(self, n_cores: int):
        self.counter = SpecIdCounter()
        self.registers: List[SpecIdRegister] = [
            SpecIdRegister() for _ in range(n_cores)]
        # Saved register values per software thread, keyed by thread id;
        # populated on context-switch-out (virtualisation).
        self._saved: Dict[int, int] = {}

    def assign(self, core_id: int) -> int:
        """Execute ``spec-assign`` on ``core_id``; returns the new ID."""
        spec_id = self.counter.assign()
        self.registers[core_id].value = spec_id
        return spec_id

    def revoke(self, core_id: int) -> None:
        """Execute ``spec-revoke`` on ``core_id``."""
        self.registers[core_id].clear()

    def current(self, core_id: int) -> int:
        return self.registers[core_id].value

    # -------------------------------------------------- context switching

    def save(self, core_id: int, thread_id: int) -> None:
        """Thread scheduled out: bank its spec-ID, clear the register."""
        self._saved[thread_id] = self.registers[core_id].value
        self.registers[core_id].clear()

    def restore(self, core_id: int, thread_id: int) -> None:
        """Thread scheduled in: reload its banked spec-ID (0 if none)."""
        self.registers[core_id].value = self._saved.pop(
            thread_id, SpecIdCounter.UNTAGGED)

    # -------------------------------------------------------- snapshotting

    def capture_state(self) -> dict:
        return {"counter": self.counter.capture_state(),
                "registers": [reg.value for reg in self.registers],
                "saved": list(self._saved.items())}

    def restore_state(self, state: dict) -> None:
        self.counter.restore_state(state["counter"])
        for reg, value in zip(self.registers, state["registers"]):
            reg.value = value
        self._saved = {thread: value for thread, value in state["saved"]}
