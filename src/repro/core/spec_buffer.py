"""The speculation buffer in the PM controller (§5.3, Figure 8).

Each entry holds ``Address`` (cache-block aligned), the automaton
``State``, the last ``Spec-ID`` observed for the block, and ``Inserted``
(the cycle its speculation window started).  Entries are allocated when
the PMC receives

* an **LLC writeback** from the regular path (load-misspeculation
  monitoring), or
* a **tagged persist** from the persist path (store-misspeculation
  tracking -- only stores inside critical sections carry spec-IDs).

Entries live for one speculation window and are lazily expired.  When
allocation finds no free entry, *all cores pause* until the oldest entry
expires (§5.3); :class:`StallController` broadcasts that pause to the
cores, and Figure 11's buffer-size sensitivity comes from exactly these
pauses.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim import Counter
from ..sim.metrics import NULL_METRICS, Metrics
from ..sim.trace import NULL_TRACER, Tracer
from . import automata
from .events import MisspeculationEvent


class StallController:
    """Global all-core pause used on speculation-buffer overflow."""

    def __init__(self) -> None:
        self.resume_at = 0
        self.stalls = 0
        self.total_stall_cycles = 0

    def stall_all_until(self, now: int, resume_at: int) -> None:
        if resume_at > self.resume_at:
            self.stalls += 1
            self.total_stall_cycles += resume_at - max(now, self.resume_at)
            self.resume_at = resume_at

    def release_time(self, now: int) -> int:
        """Earliest time a core may proceed (== now when not stalled)."""
        return max(now, self.resume_at)

    @property
    def stalled(self) -> bool:
        return self.resume_at > 0

    def capture_state(self) -> dict:
        return {"resume_at": self.resume_at,
                "stalls": self.stalls,
                "total_stall_cycles": self.total_stall_cycles}

    def restore_state(self, state: dict) -> None:
        self.resume_at = state["resume_at"]
        self.stalls = state["stalls"]
        self.total_stall_cycles = state["total_stall_cycles"]


class SpecBufferEntry:
    """One speculation-buffer row (Figure 8)."""

    __slots__ = ("block", "state", "spec_id", "inserted")

    def __init__(self, block: int, state: str, inserted: int,
                 spec_id: int = 0):
        self.block = block
        self.state = state
        self.spec_id = spec_id
        self.inserted = inserted

    def expired(self, now: int, window: int) -> bool:
        return now - self.inserted >= window

    def __repr__(self) -> str:
        return (f"SpecBufferEntry(block={self.block}, state={self.state}, "
                f"spec_id={self.spec_id}, inserted={self.inserted})")


class SpeculationBuffer:
    """The PMC-side buffer driving both misspeculation detectors."""

    #: Trace track all speculation-buffer events land on.
    TRACE_TRACK = "spec-buffer"

    def __init__(self, entries: int, window: int,
                 stall: Optional[StallController] = None,
                 report: Optional[Callable[[MisspeculationEvent], None]] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None,
                 name: str = "spec-buffer"):
        if entries < 1:
            raise ValueError("speculation buffer needs >= 1 entry")
        if window < 1:
            raise ValueError("speculation window must be >= 1 cycle")
        self.capacity = entries
        self.window = window
        self.stall = stall or StallController()
        self.report = report or (lambda event: None)
        self.trace = NULL_TRACER if tracer is None else tracer
        self.metrics = NULL_METRICS if metrics is None else metrics
        self.name = name
        self._entries: List[SpecBufferEntry] = []
        self.stats = Counter()

    # --------------------------------------------------------- observability

    def _trace_transition(self, block: int, old: str, new: str, now: int,
                          spec_id: int = 0) -> None:
        args = {"block": block}
        if spec_id:
            args["spec_id"] = spec_id
        self.trace.instant(self.TRACE_TRACK, f"{old}->{new}", now,
                           args=args, cat="spec-buffer")

    def _observe_occupancy(self, now: int) -> None:
        self.metrics.sample("spec_buffer_occupancy", now,
                            len(self._entries))

    # ------------------------------------------------------------ plumbing

    def _expire(self, now: int) -> None:
        survivors = []
        for entry in self._entries:
            if entry.expired(now, self.window):
                self.stats.add("expirations")
            else:
                survivors.append(entry)
        self._entries = survivors

    def _find(self, block: int) -> Optional[SpecBufferEntry]:
        for entry in self._entries:
            if entry.block == block:
                return entry
        return None

    def _allocate(self, block: int, state: str, now: int,
                  spec_id: int = 0) -> SpecBufferEntry:
        """Allocate an entry, pausing all cores on overflow (§5.3)."""
        self._expire(now)
        if len(self._entries) >= self.capacity:
            oldest = min(self._entries, key=lambda e: e.inserted)
            resume = oldest.inserted + self.window
            self.stats.add("overflows")
            self.stall.stall_all_until(now, resume)
            self._entries.remove(oldest)
            self.stats.add("expirations")
            now = resume
        entry = SpecBufferEntry(block, state, now, spec_id)
        self._entries.append(entry)
        self.stats.add("allocations")
        if self.trace.enabled and state != automata.INITIAL:
            self._trace_transition(block, automata.INITIAL, state, now,
                                   spec_id=spec_id)
        return entry

    def _deallocate(self, entry: SpecBufferEntry) -> None:
        self._entries.remove(entry)

    def _apply(self, entry: SpecBufferEntry, symbol: str, now: int) -> str:
        old_state = entry.state
        next_state, action = automata.step(entry.state, symbol)
        entry.state = next_state
        if self.trace.enabled and next_state != old_state:
            self._trace_transition(entry.block, old_state, next_state, now,
                                   spec_id=entry.spec_id)
        if action == automata.RESTART_WINDOW:
            entry.inserted = now
        elif action == automata.DEALLOCATE:
            self._deallocate(entry)
        return next_state

    # -------------------------------------------------------------- inputs

    def on_writeback(self, block: int, now: int) -> None:
        """LLC writeback arrived (regular path).  Starts/refreshes
        load-misspeculation monitoring for the block."""
        self._expire(now)
        self.stats.add("in_writeback")
        entry = self._find(block)
        if entry is None:
            self._allocate(block, automata.EVICT, now)
        else:
            self._apply(entry, automata.WRITEBACK, now)
        self._observe_occupancy(now)

    def on_read(self, block: int, now: int) -> None:
        """PM read arrived (regular path).  Only monitored blocks react --
        this is the eviction-based scheme's false-positive immunity."""
        self._expire(now)
        self.stats.add("in_read")
        entry = self._find(block)
        if entry is not None:
            self._apply(entry, automata.READ, now)

    def on_persist(self, block: int, spec_id: int, core_id: int,
                   now: int) -> None:
        """Persist-path store arrived.  Checks both misspeculation kinds."""
        self._expire(now)
        self.stats.add("in_persist")
        entry = self._find(block)
        if entry is not None:
            if entry.state == automata.SPECULATED:
                # WriteBack - Read - Persist: the read was stale (§5.1.4).
                self.stats.add("load_misspeculations")
                if self.trace.enabled:
                    self._trace_transition(block, entry.state,
                                           automata.MISSPECULATION, now,
                                           spec_id=spec_id)
                self.report(MisspeculationEvent(
                    kind="load", block=block, core_id=core_id, time=now,
                    spec_id=spec_id, persist_time=now))
                self._deallocate(entry)
                self._observe_occupancy(now)
                return
            if (spec_id and entry.spec_id
                    and spec_id < entry.spec_id):
                # A lower spec-ID after a higher one: the happens-before
                # (lock) order was violated in PM (§5.2.2).
                self.stats.add("store_misspeculations")
                if self.trace.enabled:
                    self._trace_transition(block, entry.state,
                                           automata.MISSPECULATION, now,
                                           spec_id=spec_id)
                self.report(MisspeculationEvent(
                    kind="store", block=block, core_id=core_id, time=now,
                    spec_id=spec_id, persist_time=now))
                self._deallocate(entry)
                self._observe_occupancy(now)
                return
            if spec_id:
                entry.spec_id = max(entry.spec_id, spec_id)
                entry.inserted = now
            else:
                self._apply(entry, automata.PERSIST, now)
            self._observe_occupancy(now)
            return
        if spec_id:
            self._allocate(block, automata.INITIAL, now, spec_id=spec_id)
        self._observe_occupancy(now)

    # ------------------------------------------------------------- queries

    def occupancy(self, now: int) -> int:
        self._expire(now)
        return len(self._entries)

    def entries(self) -> List[SpecBufferEntry]:
        return list(self._entries)

    def state_of(self, block: int, now: int) -> str:
        self._expire(now)
        entry = self._find(block)
        return entry.state if entry is not None else automata.INITIAL

    # ---------------------------------------------------------- snapshotting

    def capture_state(self) -> dict:
        # Entry order matters: _find scans linearly and _expire keeps
        # order, so the restored list must match exactly.
        return {"entries": [{"block": entry.block, "state": entry.state,
                             "spec_id": entry.spec_id,
                             "inserted": entry.inserted}
                            for entry in self._entries],
                "stats": self.stats.capture_state()}

    def restore_state(self, state: dict) -> None:
        self._entries = [
            SpecBufferEntry(entry["block"], entry["state"],
                            entry["inserted"], entry["spec_id"])
            for entry in state["entries"]]
        self.stats.restore_state(state["stats"])
