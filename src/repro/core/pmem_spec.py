"""PMEM-Spec: the paper's design (§4-§5).

Core side
---------
Every PM store is sent *both* into the caches and down the decoupled
persist path when it leaves the store queue, in commit order (§4.2) --
that FIFO property alone provides strict intra-thread persist order, so
the only barrier the program needs is ``spec-barrier`` at the end of
each FASE.  Stores committed while the core's spec-ID register is live
(between ``spec-assign`` and ``spec-revoke``, i.e. inside a compiler-
identified critical section) are tagged with the ID (§5.2.2).

PMC side
--------
:class:`PMEMSpecPMCPolicy` drops LLC writeback *data* (dirty lines are
silently dropped, §4.2) but feeds every writeback/read/persist arrival
into the :class:`~repro.core.spec_buffer.SpeculationBuffer`, which runs
the Figure 5 automaton for load misspeculation and the spec-ID check
for store misspeculation, and reports violations upward (OS -> runtime).
"""

from __future__ import annotations

from typing import Dict, List

from ..isa import block_of
from ..mem import PMCPolicy, PersistMessage
from ..persistency.base import Design
from .spec_buffer import SpeculationBuffer


class PMEMSpecPMCPolicy(PMCPolicy):
    """PMC behaviour for PMEM-Spec: drop writebacks, persist the persist
    path, and drive the speculation buffer in arrival order."""

    def __init__(self, spec_buffer: SpeculationBuffer):
        self.spec_buffer = spec_buffer

    def on_writeback(self, block_addr: int, data: Dict[int, int],
                     now: int) -> None:
        # Data silently dropped (§4.2); only monitoring starts.
        self.spec_buffer.on_writeback(block_addr >> 6, now)

    def on_read(self, block: int, now: int) -> None:
        self.spec_buffer.on_read(block, now)

    def on_persist(self, msg: PersistMessage, now: int) -> None:
        self.pmc.device.persist_store(
            msg.addr, msg.value, now,
            origin=f"persist:c{msg.core_id}:s{msg.spec_id}")
        self.spec_buffer.on_persist(block_of(msg.addr), msg.spec_id,
                                    msg.core_id, now)


class PMEMSpec(Design):
    """The proposed design: speculative PM accesses over a persist path."""

    name = "PMEM-Spec"
    flavor = "pmemspec"
    drops_llc_writebacks = True
    uses_persist_path = True

    def bind(self, system) -> None:
        super().bind(system)
        self._last_accept: List[int] = [0] * system.config.n_cores
        # Ablation knob: tag even compiler-provably-private stores, as a
        # compiler without escape analysis would (bench_ablations).
        self._tag_private = bool(
            system.config.extra.get("tag_private_stores", 0))

    def build_pmc_policy(self, index: int = 0) -> PMCPolicy:
        # One speculation buffer per controller: detection state cannot
        # span controllers, which is exactly the §7 limitation.
        return PMEMSpecPMCPolicy(self.system.spec_buffers[index])

    # -------------------------------------------------------------- stores

    def store(self, core_id: int, addr: int, value: int, now: int,
              to_pm: bool = True, kind: str = "data",
              shared: bool = True) -> int:
        """Dual-issue: caches via the regular path, PM via the persist
        path, simultaneously at store-queue departure (§4.2)."""
        done = self.system.hierarchy.store(core_id, addr, value, now)
        if to_pm:
            spec_id = 0
            if kind == "data" and (shared or self._tag_private):
                # Only shared-data stores inside critical sections carry
                # IDs; undo-log records, commit records, and stores the
                # compiler proves thread-private need no inter-thread
                # persist order (§5.2.2).
                spec_id = self.system.spec_ids.current(core_id)
            msg = PersistMessage(core_id, addr, value,
                                 spec_id=spec_id, kind=kind)
            arrival = self.system.persist_path.send(core_id, now)
            accept = self.system.pmc.accept_persist(msg, arrival)
            if accept > self._last_accept[core_id]:
                self._last_accept[core_id] = accept
            self.stats.add("persist_path_stores")
            if spec_id:
                self.stats.add("tagged_stores")
            trace = self.system.env.trace
            if trace.enabled:
                # One span per store covering issue -> ring traversal ->
                # PMC acceptance (the full persist-path journey, §4.2).
                args = {"core": core_id, "addr": addr, "kind": kind,
                        "arrival": arrival, "accept": accept}
                if spec_id:
                    args["spec_id"] = spec_id
                trace.complete("persist-path", "persist", now,
                               max(accept - now, 1), args=args,
                               cat="persist-path")
        return done

    # -------------------------------------------------------------- fences

    def spec_barrier(self, core_id: int, now: int) -> int:
        """Durability barrier: previous PM stores of this core must have
        reached the persistent domain (the PM controller, §4.2)."""
        core = self.system.cores[core_id]
        done = max(now, self._last_accept[core_id],
                   core.store_queue.drain_complete_time(now))
        self.stats.add("spec_barriers")
        self.stats.add("spec_barrier_stall_cycles", done - now)
        return done

    def spec_assign(self, core_id: int, now: int) -> int:
        self.system.spec_ids.assign(core_id)
        self.stats.add("spec_assigns")
        return now + 1

    def spec_revoke(self, core_id: int, now: int) -> int:
        self.system.spec_ids.revoke(core_id)
        self.stats.add("spec_revokes")
        return now + 1

    def quiesce_time(self, now: int) -> int:
        return max([now] + list(self._last_accept))

    def capture_state(self) -> dict:
        state = super().capture_state()
        state["last_accept"] = list(self._last_accept)
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._last_accept = list(state["last_accept"])
