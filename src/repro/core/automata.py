"""The PM load-misspeculation detection automaton (Figure 5, Tables 1-2).

PMEM-Spec tracks monitored blocks through four states:

======================  ====================================================
State                   Meaning (Table 1)
======================  ====================================================
``INITIAL``             Not monitored (all blocks start here).
``EVICT``               The PMC received an LLC writeback for the block;
                        monitoring (the speculation window) has started.
``SPECULATED``          A regular-path read fetched the monitored block
                        from PM -- this read is the speculation.
``MISSPECULATION``      A persist-path store arrived after the read: the
                        ``WriteBack - Read - Persist`` pattern, i.e. the
                        read returned stale data.
======================  ====================================================

Inputs (Table 2) are ``WRITEBACK``, ``READ``, ``PERSIST`` (messages at the
PMC) and ``EXPIRE`` (the speculation-window timer).

The eviction-based scheme (§5.1.4) only starts monitoring on a writeback,
which is what kills the write-on-allocation false positives of the naive
fetch-based scheme (§5.1.3, Figure 4): a store-miss fetch arrives as a
``READ`` while the block is still ``INITIAL`` and is ignored.

A ``PERSIST`` in ``EVICT`` ends monitoring: the in-flight store has
landed, so PM is fresh again and a later read of the block is safe.
"""

from __future__ import annotations

from typing import Tuple

# States
INITIAL = "Initial"
EVICT = "Evict"
SPECULATED = "Speculated"
MISSPECULATION = "Misspeculation"

STATES = (INITIAL, EVICT, SPECULATED, MISSPECULATION)

# Inputs
WRITEBACK = "WriteBack"
READ = "Read"
PERSIST = "Persist"
EXPIRE = "Evict(timer)"

INPUTS = (WRITEBACK, READ, PERSIST, EXPIRE)

# Window handling side-effects the buffer applies alongside a transition.
KEEP_WINDOW = "keep"
RESTART_WINDOW = "restart"
DEALLOCATE = "deallocate"

# (state, input) -> (next_state, window_action)
_TRANSITIONS = {
    (INITIAL, WRITEBACK): (EVICT, RESTART_WINDOW),
    (INITIAL, READ): (INITIAL, KEEP_WINDOW),
    (INITIAL, PERSIST): (INITIAL, KEEP_WINDOW),
    (INITIAL, EXPIRE): (INITIAL, KEEP_WINDOW),

    (EVICT, WRITEBACK): (EVICT, RESTART_WINDOW),
    (EVICT, READ): (SPECULATED, KEEP_WINDOW),
    (EVICT, PERSIST): (INITIAL, DEALLOCATE),
    (EVICT, EXPIRE): (INITIAL, DEALLOCATE),

    (SPECULATED, WRITEBACK): (SPECULATED, RESTART_WINDOW),
    (SPECULATED, READ): (SPECULATED, KEEP_WINDOW),
    (SPECULATED, PERSIST): (MISSPECULATION, KEEP_WINDOW),
    (SPECULATED, EXPIRE): (INITIAL, DEALLOCATE),

    # Misspeculation is reported and the entry recycled immediately; these
    # transitions exist only for completeness.
    (MISSPECULATION, WRITEBACK): (EVICT, RESTART_WINDOW),
    (MISSPECULATION, READ): (MISSPECULATION, KEEP_WINDOW),
    (MISSPECULATION, PERSIST): (MISSPECULATION, KEEP_WINDOW),
    (MISSPECULATION, EXPIRE): (INITIAL, DEALLOCATE),
}


def step(state: str, symbol: str) -> Tuple[str, str]:
    """One automaton transition; returns ``(next_state, window_action)``."""
    if state not in STATES:
        raise ValueError(f"unknown state {state!r}")
    if symbol not in INPUTS:
        raise ValueError(f"unknown input {symbol!r}")
    return _TRANSITIONS[(state, symbol)]


def run(symbols) -> str:
    """Fold a whole input sequence from ``INITIAL``; returns final state.

    Convenience for tests and the documentation examples (Figure 6).
    """
    state = INITIAL
    for symbol in symbols:
        state, _action = step(state, symbol)
    return state


def detects(symbols) -> bool:
    """True if the sequence ever reaches ``MISSPECULATION``."""
    state = INITIAL
    for symbol in symbols:
        state, _action = step(state, symbol)
        if state == MISSPECULATION:
            return True
    return False
