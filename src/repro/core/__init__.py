"""PMEM-Spec core contribution: speculation machinery and the design."""

from . import automata
from .events import MisspeculationEvent
from .pmem_spec import PMEMSpec, PMEMSpecPMCPolicy
from .spec_buffer import SpecBufferEntry, SpeculationBuffer, StallController
from .spec_id import SpecIdFile, SpecIdRegister

__all__ = [
    "MisspeculationEvent", "PMEMSpec", "PMEMSpecPMCPolicy",
    "SpecBufferEntry", "SpecIdFile", "SpecIdRegister", "SpeculationBuffer",
    "StallController", "automata",
]
