"""Contention primitives built on the DES kernel.

Three primitives cover every shared structure in the simulator:

* :class:`Mutex` -- a FIFO lock for simulated threads (workload locks).
* :class:`TimelineResource` -- earliest-slot reservation for pipelined
  units with fixed occupancy per request (PMC queues, ring-bus slots,
  cache ports).  Reservation is a synchronous computation, so hot paths
  pay no event overhead; callers simply advance their local time to the
  returned completion time.
* :class:`CapacityQueue` -- a counted-capacity queue with blocking-when-
  full semantics (persist buffers, store queues) where drain happens on a
  background timeline.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import deque
from typing import Deque, List, Optional, Tuple

from .engine import Environment, Event


class Mutex:
    """FIFO mutual exclusion for simulated threads.

    ``acquire`` returns an :class:`Event` that fires when the caller owns
    the lock; ``release`` hands it to the next waiter at the current time.
    """

    def __init__(self, env: Environment, name: str = "mutex"):
        self.env = env
        self.name = name
        self.owner: Optional[object] = None
        self._waiters: Deque[Tuple[object, Event]] = deque()
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def acquire(self, who: object = None) -> Event:
        grant = self.env.event()
        if self.owner is None:
            self.owner = who if who is not None else grant
            self.acquisitions += 1
            grant.succeed()
        else:
            self.contended_acquisitions += 1
            self._waiters.append((who, grant))
        return grant

    def release(self, who: object = None) -> None:
        if self.owner is None:
            raise RuntimeError(f"release of unlocked mutex {self.name!r}")
        if self._waiters:
            next_who, grant = self._waiters.popleft()
            self.owner = next_who if next_who is not None else grant
            self.acquisitions += 1
            grant.succeed()
        else:
            self.owner = None

    @property
    def locked(self) -> bool:
        return self.owner is not None

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def capture_state(self) -> dict:
        # A waiter holds a live grant Event; the ladder only captures
        # when no core is blocked on a lock, so waiters here are a bug.
        if self._waiters:
            from ..snapshot.store import SnapshotError
            raise SnapshotError(
                f"mutex {self.name!r} has waiters at capture")
        if self.owner is not None:
            from ..snapshot.store import SnapshotError
            raise SnapshotError(
                f"mutex {self.name!r} held at capture")
        return {"acquisitions": self.acquisitions,
                "contended_acquisitions": self.contended_acquisitions}

    def restore_state(self, state: dict) -> None:
        self.owner = None
        self._waiters = deque()
        self.acquisitions = state["acquisitions"]
        self.contended_acquisitions = state["contended_acquisitions"]


class TimelineResource:
    """A unit that serves one request per ``width`` lanes at a time.

    ``reserve(now, service)`` books the earliest available slot at or
    after ``now`` and returns ``(start, finish)``.  With ``width == 1``
    this models a strictly serial unit; larger widths model banked or
    multi-lane units.  The computation is synchronous: no DES events are
    involved, making it cheap enough for per-memory-access use.
    """

    __slots__ = ("width", "name", "_lanes", "total_busy",
                 "total_requests", "total_wait")

    def __init__(self, width: int = 1, name: str = "timeline"):
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width
        self.name = name
        # Next-free time per lane; lazily rotated min selection.
        self._lanes = [0] * width
        self.total_busy = 0
        self.total_requests = 0
        self.total_wait = 0

    def earliest_start(self, now: int) -> int:
        return max(now, min(self._lanes))

    def reserve(self, now: int, service: int) -> Tuple[int, int]:
        if service < 0:
            raise ValueError("negative service time")
        lanes = self._lanes
        # Earliest-free lane, first-index tie-break (matches
        # ``min(range(width), key=...)`` but without the per-call lambda).
        lane = 0
        free = lanes[0]
        if len(lanes) > 1:
            for index in range(1, len(lanes)):
                when = lanes[index]
                if when < free:
                    lane = index
                    free = when
        start = free if free > now else now
        finish = start + service
        lanes[lane] = finish
        self.total_requests += 1
        self.total_busy += service
        self.total_wait += start - now
        return start, finish

    def utilization(self, now: int) -> float:
        if now <= 0:
            return 0.0
        return self.total_busy / (now * self.width)

    def capture_state(self) -> dict:
        return {"lanes": list(self._lanes),
                "total_busy": self.total_busy,
                "total_requests": self.total_requests,
                "total_wait": self.total_wait}

    def restore_state(self, state: dict) -> None:
        self._lanes = list(state["lanes"])
        self.total_busy = state["total_busy"]
        self.total_requests = state["total_requests"]
        self.total_wait = state["total_wait"]


class OccupancyQueue:
    """A bounded set of in-flight operations that complete independently.

    Unlike :class:`CapacityQueue` (whose entries drain *serially* through
    limited lanes -- device bandwidth), an occupancy queue's entries each
    finish at a caller-supplied completion time: the right model for a
    store queue, where an entry merely holds a slot until its own store
    completes.  ``push`` returns the admission time: ``now`` while slots
    are free, otherwise the completion of the oldest in-flight entry.
    """

    __slots__ = ("capacity", "name", "_completions", "pushes",
                 "stalled_pushes", "total_stall")

    def __init__(self, capacity: int, name: str = "occupancy"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._completions: List[int] = []   # kept sorted
        self.pushes = 0
        self.stalled_pushes = 0
        self.total_stall = 0

    def _evict_completed(self, now: int) -> None:
        completions = self._completions
        if completions and completions[0] <= now:
            index = bisect_right(completions, now)
            del completions[:index]

    def occupancy(self, now: int) -> int:
        self._evict_completed(now)
        return len(self._completions)

    def push(self, now: int, completion: int) -> int:
        """Admit an entry completing at ``completion``; returns admission
        time (> ``now`` means the queue was full: caller stalls)."""
        self._evict_completed(now)
        completions = self._completions
        accept = now
        if len(completions) >= self.capacity:
            overflow = len(completions) - self.capacity + 1
            accept = completions[overflow - 1]
            self.stalled_pushes += 1
            self.total_stall += accept - now
        insort(completions, completion if completion > now else now)
        self.pushes += 1
        return accept

    def drain_complete_time(self, now: int) -> int:
        """When every currently in-flight entry has completed."""
        self._evict_completed(now)
        return self._completions[-1] if self._completions else now

    def capture_state(self) -> dict:
        return {"completions": list(self._completions),
                "pushes": self.pushes,
                "stalled_pushes": self.stalled_pushes,
                "total_stall": self.total_stall}

    def restore_state(self, state: dict) -> None:
        self._completions = list(state["completions"])
        self.pushes = state["pushes"]
        self.stalled_pushes = state["stalled_pushes"]
        self.total_stall = state["total_stall"]


class CapacityQueue:
    """A bounded buffer whose entries drain on a background timeline.

    Models persist buffers and write-pending queues: ``push`` books the
    entry's drain completion on the internal :class:`TimelineResource`
    and returns the completion time.  When all ``capacity`` entries are
    occupied at ``now``, the effective insertion time is delayed until
    the oldest in-flight entry completes (back-pressure), which is how
    store-queue/persist-buffer overflow stalls arise.
    """

    __slots__ = ("capacity", "drain_latency", "name", "_drain",
                 "_completions", "pushes", "stalled_pushes", "total_stall")

    def __init__(self, capacity: int, drain_latency: int, width: int = 1,
                 name: str = "queue"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.drain_latency = drain_latency
        self.name = name
        self._drain = TimelineResource(width=width, name=name + ".drain")
        self._completions: Deque[int] = deque()
        self.pushes = 0
        self.stalled_pushes = 0
        self.total_stall = 0

    def _evict_completed(self, now: int) -> None:
        while self._completions and self._completions[0] <= now:
            self._completions.popleft()

    def occupancy(self, now: int) -> int:
        self._evict_completed(now)
        return len(self._completions)

    def admission_time(self, now: int) -> int:
        """Earliest time a new entry can be accepted (stall-aware)."""
        self._evict_completed(now)
        if len(self._completions) < self.capacity:
            return now
        # Must wait for the oldest entry still in flight to complete.
        overflow = len(self._completions) - self.capacity + 1
        return self._completions[overflow - 1]

    def push(self, now: int, service: Optional[int] = None) -> Tuple[int, int]:
        """Insert an entry; returns ``(accept_time, drain_complete_time)``."""
        service = self.drain_latency if service is None else service
        accept = self.admission_time(now)
        if accept > now:
            self.stalled_pushes += 1
            self.total_stall += accept - now
        _start, finish = self._drain.reserve(accept, service)
        # Keep completions sorted: drains are FIFO per lane but lanes can
        # interleave; insert in order.
        if self._completions and finish < self._completions[-1]:
            items = list(self._completions)
            items.append(finish)
            items.sort()
            self._completions = deque(items)
        else:
            self._completions.append(finish)
        self.pushes += 1
        return accept, finish

    def drain_complete_time(self, now: int) -> int:
        """Time at which everything currently queued has drained."""
        self._evict_completed(now)
        return self._completions[-1] if self._completions else now

    def capture_state(self) -> dict:
        return {"drain": self._drain.capture_state(),
                "completions": list(self._completions),
                "pushes": self.pushes,
                "stalled_pushes": self.stalled_pushes,
                "total_stall": self.total_stall}

    def restore_state(self, state: dict) -> None:
        self._drain.restore_state(state["drain"])
        self._completions = deque(state["completions"])
        self.pushes = state["pushes"]
        self.stalled_pushes = state["stalled_pushes"]
        self.total_stall = state["total_stall"]
