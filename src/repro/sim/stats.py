"""Lightweight statistics containers shared by all simulator components."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List


class Counter(dict):
    """A named bag of integer counters with dict-like access.

    A ``dict`` subclass (rather than a wrapper) so the per-event hot
    paths pay a single C-level ``get``/``__setitem__`` per bump; missing
    names still read as 0.
    """

    __slots__ = ()

    def add(self, name: str, amount: int = 1) -> None:
        self[name] = self.get(name, 0) + amount

    def __getitem__(self, name: str) -> int:
        return self.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self)

    def merge(self, other: "Counter") -> None:
        for name, value in other.items():
            self[name] = self.get(name, 0) + value

    def capture_state(self) -> Dict[str, int]:
        return dict(self)

    def restore_state(self, state: Dict[str, int]) -> None:
        self.clear()
        self.update(state)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.items()))
        return f"Counter({inner})"


class RunningStat:
    """Streaming mean/variance/min/max (Welford)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def record(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


class Histogram:
    """Fixed-bucket histogram for latency distributions."""

    def __init__(self, bucket_width: int, max_buckets: int = 64):
        if bucket_width < 1:
            raise ValueError("bucket_width must be >= 1")
        self.bucket_width = bucket_width
        self.max_buckets = max_buckets
        self.buckets: List[int] = [0] * max_buckets
        self.overflow = 0
        self.stat = RunningStat()

    def record(self, value: float) -> None:
        self.stat.record(value)
        index = int(value // self.bucket_width)
        if index >= self.max_buckets:
            self.overflow += 1
        else:
            self.buckets[index] += 1

    @property
    def count(self) -> int:
        return self.stat.count

    def percentile(self, fraction: float) -> float:
        """Approximate percentile from bucket midpoints.

        Overflow records (values past the last bucket) are part of
        ``count`` but are not scanned bucket-by-bucket; they form a
        virtual final bucket whose only known statistic is the stream
        maximum.  Any target rank landing in that overflow mass
        therefore reports ``stat.maximum`` rather than the last
        in-range bucket.  Empty leading buckets are skipped so low
        fractions report the first *populated* bucket, not bucket 0.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        in_range = self.count - self.overflow
        if target > in_range:
            # seen + overflow crosses the target only once the scan is
            # past every in-range record: the rank lives in overflow.
            return self.stat.maximum
        seen = 0
        for index, population in enumerate(self.buckets):
            seen += population
            if population and seen >= target:
                return (index + 0.5) * self.bucket_width
        return self.stat.maximum


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports geomean throughput in Figure 12."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
