"""Cycle-windowed time-series metrics.

A :class:`MetricsCollector` folds instrumented samples into fixed-width
cycle windows so end-of-run results can show *when* things happened --
persist-path occupancy racing the regular path, speculation-buffer
residency, misspeculation bursts -- instead of only flat end-of-run
counters.  Two series kinds:

* **gauges** (:meth:`Metrics.sample`): instantaneous levels (queue
  depth, buffer occupancy); each window keeps count/mean/min/max.
* **counts** (:meth:`Metrics.count`): event totals per window
  (misspeculations); dividing by the window width gives a rate.

Windows are ring-buffered (``max_windows``): long runs keep the most
recent history and report how many early windows were evicted.  Like
tracing, collection is opt-in -- the shared :data:`NULL_METRICS`
default makes every instrumented site a single ``enabled`` check.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional


class Metrics:
    """Interface + null behaviour (mirrors :class:`repro.sim.trace.Tracer`)."""

    enabled = False

    def sample(self, name: str, cycle: int, value: float) -> None:
        """Record an instantaneous level of gauge ``name`` at ``cycle``."""

    def count(self, name: str, cycle: int, amount: int = 1) -> None:
        """Add ``amount`` occurrences to counter ``name`` at ``cycle``."""


class NullMetrics(Metrics):
    """The zero-overhead default: drops everything."""

    __slots__ = ()


#: Shared do-nothing instance.
NULL_METRICS = NullMetrics()

GAUGE = "gauge"
COUNT = "count"


class _Window:
    """One aggregation window of a series."""

    __slots__ = ("start", "n", "total", "minimum", "maximum")

    def __init__(self, start: int):
        self.start = start
        self.n = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.n += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value


class _Series:
    """One named series: a ring buffer of closed windows plus the open one."""

    __slots__ = ("kind", "windows", "current", "evicted")

    def __init__(self, kind: str, max_windows: int):
        self.kind = kind
        self.windows: Deque[_Window] = deque(maxlen=max_windows)
        self.current: Optional[_Window] = None
        self.evicted = 0

    def add(self, window_start: int, value: float) -> None:
        window = self.current
        if window is None or window.start != window_start:
            if window is not None:
                if len(self.windows) == self.windows.maxlen:
                    self.evicted += 1
                self.windows.append(window)
            window = _Window(window_start)
            self.current = window
        window.add(value)

    def closed_and_current(self) -> List[_Window]:
        out = list(self.windows)
        if self.current is not None:
            out.append(self.current)
        return out


class MetricsCollector(Metrics):
    """Aggregates samples into cycle windows, ring-buffered per series.

    ``window_cycles`` is the aggregation width; ``max_windows`` bounds
    per-series memory (oldest windows are evicted and counted).
    """

    enabled = True

    def __init__(self, window_cycles: int = 10_000,
                 max_windows: int = 512):
        if window_cycles < 1:
            raise ValueError("window_cycles must be >= 1")
        if max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        self.window_cycles = window_cycles
        self.max_windows = max_windows
        self._series: Dict[str, _Series] = {}

    def _series_for(self, name: str, kind: str) -> _Series:
        series = self._series.get(name)
        if series is None:
            series = _Series(kind, self.max_windows)
            self._series[name] = series
        elif series.kind != kind:
            raise ValueError(
                f"series {name!r} is a {series.kind}, not a {kind}")
        return series

    def _window_start(self, cycle: int) -> int:
        return (cycle // self.window_cycles) * self.window_cycles

    def sample(self, name: str, cycle: int, value: float) -> None:
        self._series_for(name, GAUGE).add(self._window_start(cycle), value)

    def count(self, name: str, cycle: int, amount: int = 1) -> None:
        self._series_for(name, COUNT).add(self._window_start(cycle), amount)

    # ------------------------------------------------------------ queries

    @property
    def series_names(self) -> List[str]:
        return sorted(self._series)

    def windows(self, name: str) -> List[Dict]:
        """The series' windows, oldest first, as plain dictionaries."""
        series = self._series.get(name)
        if series is None:
            return []
        out = []
        for window in series.closed_and_current():
            if series.kind == COUNT:
                out.append({"start": window.start,
                            "count": int(window.total)})
            else:
                out.append({
                    "start": window.start,
                    "n": window.n,
                    "mean": window.total / window.n,
                    "min": window.minimum,
                    "max": window.maximum,
                })
        return out

    def to_dict(self) -> Dict:
        """JSON-ready export (the ``SimResult.timeseries`` payload)."""
        return {
            "window_cycles": self.window_cycles,
            "series": {
                name: {
                    "kind": series.kind,
                    "evicted_windows": series.evicted,
                    "windows": self.windows(name),
                }
                for name, series in sorted(self._series.items())
            },
        }
