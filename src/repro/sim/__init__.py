"""Discrete-event simulation kernel (events, processes, resources, stats)."""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupted,
    Process,
    SimulationError,
    Timeout,
)
from .resources import (
    CapacityQueue,
    Mutex,
    OccupancyQueue,
    TimelineResource,
)
from .stats import Counter, Histogram, RunningStat, geomean

__all__ = [
    "AllOf",
    "AnyOf",
    "CapacityQueue",
    "Counter",
    "Environment",
    "Event",
    "Histogram",
    "Interrupted",
    "Mutex",
    "OccupancyQueue",
    "Process",
    "RunningStat",
    "SimulationError",
    "Timeout",
    "TimelineResource",
    "geomean",
]
