"""Discrete-event simulation kernel (events, processes, resources,
stats, tracing, metrics)."""

from .engine import (
    DEFAULT_SCHEDULER,
    SCHEDULERS,
    AllOf,
    AnyOf,
    CalendarScheduler,
    Environment,
    Event,
    HeapScheduler,
    Interrupted,
    Process,
    SimulationError,
    Timeout,
    make_scheduler,
)
from .metrics import (
    NULL_METRICS,
    Metrics,
    MetricsCollector,
    NullMetrics,
)
from .resources import (
    CapacityQueue,
    Mutex,
    OccupancyQueue,
    TimelineResource,
)
from .stats import Counter, Histogram, RunningStat, geomean
from .trace import (
    NULL_TRACER,
    NullTracer,
    TraceRecorder,
    Tracer,
    validate_trace_document,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarScheduler",
    "CapacityQueue",
    "Counter",
    "DEFAULT_SCHEDULER",
    "Environment",
    "Event",
    "HeapScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "Histogram",
    "Interrupted",
    "Metrics",
    "MetricsCollector",
    "Mutex",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "OccupancyQueue",
    "Process",
    "RunningStat",
    "SimulationError",
    "Timeout",
    "TimelineResource",
    "TraceRecorder",
    "Tracer",
    "geomean",
    "validate_trace_document",
]
