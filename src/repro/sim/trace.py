"""Cycle-domain tracing: typed spans/instants exported as Chrome
trace-event JSON (viewable in Perfetto / chrome://tracing).

Two implementations share one interface:

* :class:`NullTracer` -- the default everywhere.  Every method is a
  no-op and :attr:`Tracer.enabled` is ``False``, so instrumented hot
  paths guard with ``if tracer.enabled:`` and pay a single attribute
  test when tracing is off.
* :class:`TraceRecorder` -- buffers events in memory and serialises
  them with :meth:`TraceRecorder.to_dict` / :meth:`TraceRecorder.save`.

Tracks
------
Events land on named *tracks* (one Perfetto row each): ``core0`` ..
``coreN`` for the per-core FASE lifecycle, ``persist-path`` for
store-issue -> PMC-acceptance spans, ``PMC`` for controller arrivals,
and ``spec-buffer`` for speculation-buffer automaton transitions.
Tracks map to Chrome trace ``tid`` values under one ``pid``; a
``thread_name`` metadata event labels each.

Timebase
--------
The simulator's clock is integer core cycles; the Chrome format wants
microseconds.  The recorder converts at *export* time using the
``cycle_ns`` it was constructed with, so recording stays integer-only
and cheap.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

# Chrome trace event phases used here (the full format supports more).
PHASE_COMPLETE = "X"
PHASE_INSTANT = "i"
PHASE_COUNTER = "C"
PHASE_METADATA = "M"

TRACE_PID = 1


class Tracer:
    """Interface + null behaviour: subclasses override to record.

    ``enabled`` is a class attribute so the hot-path guard is a plain
    attribute load, never a method call.
    """

    enabled = False

    def instant(self, track: str, name: str, ts: int,
                args: Optional[Dict] = None, cat: str = "sim") -> None:
        """A zero-duration marker at cycle ``ts``."""

    def complete(self, track: str, name: str, ts: int, dur: int,
                 args: Optional[Dict] = None, cat: str = "sim") -> None:
        """A span covering cycles ``[ts, ts + dur]``."""

    def counter(self, track: str, name: str, ts: int,
                value: float) -> None:
        """A sampled counter value at cycle ``ts`` (rendered as a
        stacked area chart by Perfetto)."""


class NullTracer(Tracer):
    """The zero-overhead default: drops everything."""

    __slots__ = ()


#: Shared do-nothing instance -- components default to this so a bare
#: ``Environment()`` costs nothing extra.
NULL_TRACER = NullTracer()


class TraceRecorder(Tracer):
    """In-memory trace buffer with Chrome trace-event JSON export.

    ``max_events`` bounds memory on long runs; past it, new events are
    counted in :attr:`dropped` and discarded (the trace header reports
    the loss rather than silently truncating).
    """

    enabled = True

    def __init__(self, cycle_ns: float = 0.5,
                 max_events: int = 1_000_000):
        if cycle_ns <= 0:
            raise ValueError("cycle_ns must be positive")
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.cycle_ns = cycle_ns
        self.max_events = max_events
        self.dropped = 0
        # (phase, track, name, cat, ts_cycles, dur_cycles, args)
        self._events: List[tuple] = []
        self._tracks: Dict[str, int] = {}

    # ------------------------------------------------------------ tracks

    def track_id(self, track: str) -> int:
        """The stable ``tid`` for a track name (allocated on first use)."""
        tid = self._tracks.get(track)
        if tid is None:
            tid = len(self._tracks)
            self._tracks[track] = tid
        return tid

    @property
    def tracks(self) -> List[str]:
        return list(self._tracks)

    # --------------------------------------------------------- recording

    def _push(self, item: tuple) -> None:
        if item[1] not in self._tracks:
            self.track_id(item[1])
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(item)

    def instant(self, track: str, name: str, ts: int,
                args: Optional[Dict] = None, cat: str = "sim") -> None:
        self._push((PHASE_INSTANT, track, name, cat, ts, 0, args))

    def complete(self, track: str, name: str, ts: int, dur: int,
                 args: Optional[Dict] = None, cat: str = "sim") -> None:
        self._push((PHASE_COMPLETE, track, name, cat, ts, dur, args))

    def counter(self, track: str, name: str, ts: int,
                value: float) -> None:
        self._push((PHASE_COUNTER, track, name, "counter", ts, 0,
                    {name: value}))

    def __len__(self) -> int:
        return len(self._events)

    def events(self, start: int = 0) -> List[tuple]:
        """The buffered ``(phase, track, name, cat, ts, dur, args)``
        tuples in recording order -- the cycle-domain stream the
        validation oracle replays (:mod:`repro.validation.history`),
        without the unit conversion ``to_dict`` applies for renderers.
        ``start`` skips an already-processed prefix (a restored rung's
        events) without copying it."""
        return self._events[start:]

    def capture_state(self) -> Dict:
        """The event prefix rides in snapshots so a restored trial's
        oracle sees the full history from cycle 0, not just the
        replayed tail.  It is excluded from fingerprints.  Rows stay
        the recorder's own tuples: only the outer list is copied, which
        keeps per-rung ladder captures O(events) pointer copies instead
        of O(events x fields) row rebuilds."""
        return {"dropped": self.dropped,
                "events": list(self._events),
                "tracks": list(self._tracks.items())}

    def restore_state(self, state: Dict) -> None:
        self.dropped = state["dropped"]
        # Rows may arrive as lists (an older store, or a JSON round
        # trip); ``tuple()`` of a tuple returns the same object, so the
        # common tuple-row case costs one pointer copy per row.
        self._events = [tuple(item) for item in state["events"]]
        self._tracks = {name: tid for name, tid in state["tracks"]}

    # ------------------------------------------------------------ export

    def _us(self, cycles: int) -> float:
        return cycles * self.cycle_ns / 1000.0

    def to_dict(self) -> Dict:
        """The Chrome trace-event JSON document (object form)."""
        events: List[Dict] = [{
            "name": "process_name", "ph": PHASE_METADATA,
            "pid": TRACE_PID, "tid": 0,
            "args": {"name": "repro-sim"},
        }]
        for track, tid in self._tracks.items():
            events.append({
                "name": "thread_name", "ph": PHASE_METADATA,
                "pid": TRACE_PID, "tid": tid,
                "args": {"name": track},
            })
            events.append({
                "name": "thread_sort_index", "ph": PHASE_METADATA,
                "pid": TRACE_PID, "tid": tid,
                "args": {"sort_index": tid},
            })
        for phase, track, name, cat, ts, dur, args in self._events:
            event = {
                "name": name, "ph": phase, "cat": cat,
                "ts": self._us(ts), "pid": TRACE_PID,
                "tid": self._tracks[track],
            }
            if phase == PHASE_COMPLETE:
                event["dur"] = self._us(dur)
            elif phase == PHASE_INSTANT:
                event["s"] = "t"
            if args:
                event["args"] = dict(args)
            events.append(event)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {
                "cycle_ns": self.cycle_ns,
                "dropped_events": self.dropped,
            },
        }

    def save(self, path: str, indent: Optional[int] = None) -> str:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=indent)
            handle.write("\n")
        return path


def validate_trace_document(document: Dict) -> List[str]:
    """Schema-check a Chrome trace-event document; returns a list of
    problems (empty == valid).  Used by the test suite and by consumers
    that want to fail fast before handing a file to Perfetto."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase == PHASE_METADATA:
            continue
        if "ts" not in event:
            problems.append(f"{where}: missing 'ts'")
        elif not isinstance(event["ts"], (int, float)):
            problems.append(f"{where}: 'ts' not numeric")
        if phase == PHASE_COMPLETE and "dur" not in event:
            problems.append(f"{where}: complete event missing 'dur'")
        if phase not in (PHASE_COMPLETE, PHASE_INSTANT, PHASE_COUNTER):
            problems.append(f"{where}: unknown phase {phase!r}")
    return problems
