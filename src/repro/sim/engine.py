"""Process-based discrete-event simulation kernel.

This is the substrate every timing model in the reproduction runs on.  It
is a deliberately small re-implementation of the SimPy programming model:

* an :class:`Environment` owns simulated time and a pending-event heap,
* a :class:`Process` wraps a Python generator; each value the generator
  yields is an :class:`Event` the process waits on,
* :meth:`Environment.timeout` produces delay events, :meth:`Environment.event`
  produces manually-triggered ones, and :class:`AllOf` joins several.

Simulated time is a plain integer.  Throughout the repository one time
unit is one CPU cycle at 2 GHz (0.5 ns) -- see
:class:`repro.harness.configs.SystemConfig`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from .metrics import NULL_METRICS, Metrics
from .trace import NULL_TRACER, Tracer


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double trigger, running a dead env...)."""


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* with an optional value; all registered
    callbacks then run at the trigger time.  Triggering twice is an error
    -- use a fresh event per occurrence.
    """

    __slots__ = ("env", "callbacks", "_value", "_triggered", "_scheduled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now (schedules callbacks at the current time)."""
        if self._triggered or self._scheduled:
            raise SimulationError("event triggered twice")
        self._value = value
        self._scheduled = True
        self.env._schedule(self, 0)
        return self

    def _fire(self) -> None:
        self._triggered = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires (immediately if fired)."""
        if self._triggered:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._scheduled = True
        env._schedule(self, delay)


class AllOf(Event):
    """Fires once every child event has fired; value is the list of values."""

    __slots__ = ("_pending", "_children")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    @property
    def children(self) -> List[Event]:
        return list(self._children)

    def _on_child(self, _event: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not (self._triggered or self._scheduled):
            self.succeed([child.value for child in self._children])


class AnyOf(Event):
    """Fires when the first child event fires; value is that child's value.

    The child list is retained (mirroring :class:`AllOf`) and the
    winning event is exposed as :attr:`first_fired`, so a process that
    raced several events can tell which one actually woke it.
    """

    __slots__ = ("_children", "first_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        self.first_fired: Optional[Event] = None
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for child in self._children:
            child.add_callback(self._on_child)

    @property
    def children(self) -> List[Event]:
        return list(self._children)

    def _on_child(self, event: Event) -> None:
        if not (self._triggered or self._scheduled):
            self.first_fired = event
            self.succeed(event.value)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running generator; the Process is itself an event that fires when
    the generator returns (value = the generator's return value)."""

    __slots__ = ("_generator", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str = ""):
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off on the next scheduling round at the current time.
        start = Event(env)
        start.add_callback(self._resume)
        start.succeed()

    def _resume(self, event: Event) -> None:
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            if not (self._triggered or self._scheduled):
                self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, not an Event")
        target.add_callback(self._resume)

    def interrupt(self, reason: Any = None) -> None:
        """Throw :class:`Interrupted` into the generator at the current time."""
        def deliver(_event: Event) -> None:
            try:
                target = self._generator.throw(Interrupted(reason))
            except StopIteration as stop:
                if not (self._triggered or self._scheduled):
                    self.succeed(stop.value)
                return
            target.add_callback(self._resume)
        kick = Event(self.env)
        kick.add_callback(deliver)
        kick.succeed()


class Interrupted(Exception):
    """Delivered into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, reason: Any = None):
        super().__init__(reason)
        self.reason = reason


class Environment:
    """Owns the clock and the event heap and drives the simulation.

    Also the anchor for observability: every component reachable from
    the environment shares its ``trace`` (:class:`~repro.sim.trace.Tracer`)
    and ``metrics`` (:class:`~repro.sim.metrics.Metrics`).  Both default
    to the shared null singletons, so an uninstrumented run pays one
    ``enabled`` attribute check per guarded site and nothing more.
    """

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None) -> None:
        self.now: int = 0
        self.trace: Tracer = NULL_TRACER if tracer is None else tracer
        self.metrics: Metrics = (NULL_METRICS if metrics is None
                                 else metrics)
        self._heap: List = []
        self._sequence = 0

    def _schedule(self, event: Event, delay: int) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int) -> Timeout:
        return Timeout(self, int(delay))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def call_at(self, when: int, callback: Callable[[], None]) -> None:
        """Run a bare callback at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(f"call_at into the past: {when} < {self.now}")
        marker = Event(self)
        marker.add_callback(lambda _e: callback())
        self._schedule(marker, when - self.now)

    def peek(self) -> Optional[int]:
        """Time of the next pending event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> None:
        when, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = when
        event._fire()

    def run(self, until: Optional[int] = None,
            stop_event: Optional[Event] = None) -> int:
        """Drain the event heap.

        Stops when the heap empties, when simulated time would pass
        ``until``, or as soon as ``stop_event`` has fired.  Returns the
        final simulated time.
        """
        while self._heap:
            if stop_event is not None and stop_event.triggered:
                break
            if until is not None and self._heap[0][0] > until:
                self.now = until
                break
            self.step()
        return self.now

    def capture_state(self) -> dict:
        """Snapshot the clock.  Only legal at a quiesce point: pending
        events wrap live generators/callbacks and cannot be serialised,
        so a non-empty heap is a hard error, not a silent omission."""
        if self._heap:
            from ..snapshot.store import SnapshotError
            raise SnapshotError(
                f"environment heap not empty at capture "
                f"({len(self._heap)} pending events)")
        return {"now": self.now, "sequence": self._sequence}

    def restore_state(self, state: dict) -> None:
        self.now = state["now"]
        # The sequence counter only breaks same-time heap ties among
        # events created *after* this point, so restoring it is about
        # byte-identical replay, not correctness.
        self._sequence = state["sequence"]
        self._heap = []
