"""Process-based discrete-event simulation kernel.

This is the substrate every timing model in the reproduction runs on.  It
is a deliberately small re-implementation of the SimPy programming model:

* an :class:`Environment` owns simulated time and a pluggable pending-event
  :class:`Scheduler` (calendar queue by default, binary heap for A/B runs),
* a :class:`Process` wraps a Python generator; each value the generator
  yields is an :class:`Event` the process waits on,
* :meth:`Environment.timeout` produces delay events, :meth:`Environment.event`
  produces manually-triggered ones, and :class:`AllOf` joins several,
* :meth:`Environment.schedule_at` is the allocation-free fast path: it fires
  a bare callback at an absolute cycle without creating an :class:`Event`.

Simulated time is a plain integer.  Throughout the repository one time
unit is one CPU cycle at 2 GHz (0.5 ns) -- see
:class:`repro.harness.configs.SystemConfig`.

Scheduler protocol
------------------
A scheduler is any object with this surface (duck-typed, no ABC -- the
kernel only ever calls these five operations):

``push(when, item)``
    Enqueue ``item`` (an :class:`Event` or a bare callable) at absolute
    cycle ``when``.  ``when`` is never in the past: every producer goes
    through :meth:`Environment._schedule` / :meth:`Environment.schedule_at`,
    which guarantee ``when >= now``.
``pop() -> (when, item)``
    Remove and return the earliest item.  Items at the same cycle MUST
    come back in insertion order (global FIFO per cycle) -- this is the
    kernel's only tie-breaking rule and the determinism contract every
    implementation must honour bit-for-bit.  Raises ``IndexError`` when
    empty (the :class:`Environment` wraps it in a typed error).
``peek() -> Optional[int]``
    Cycle of the earliest item, or ``None`` when empty.  Must be O(1)
    (amortised): the run loop calls it once per event.
``__len__``
    Number of pending items (0 means drained -- the snapshot quiesce
    check relies on it).
``clear()``
    Drop everything, including any internal cursor, so a restored
    environment starts from a genuinely empty queue.

Two implementations ship: :class:`HeapScheduler` (the classic
``(when, seq)`` binary heap -- one push/pop per event) and
:class:`CalendarScheduler` (buckets keyed on cycle with a heap of
*distinct* cycles -- one heap operation per populated cycle, list appends
otherwise, which coalesces same-cycle wakeups into a single bucket
drain).  Both order identically; ``tests/sim/test_scheduler_equivalence``
holds them to that with randomised event programs.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from .metrics import NULL_METRICS, Metrics
from .trace import NULL_TRACER, Tracer


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double trigger, stepping an empty queue,
    scheduling into the past...)."""


# ---------------------------------------------------------------- schedulers


class HeapScheduler:
    """The classic binary-heap scheduler: one heap push/pop per event.

    Entries are ``(when, seq, item)`` tuples; ``seq`` is a monotonically
    increasing insertion counter, so same-cycle items pop in insertion
    order and the comparison never reaches the (unorderable) item.
    Kept as the reference implementation for A/B benchmarking against
    :class:`CalendarScheduler`.
    """

    __slots__ = ("_heap", "_seq")

    name = "heap"

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Any]] = []
        self._seq = 0

    def push(self, when: int, item: Any) -> None:
        self._seq += 1
        heappush(self._heap, (when, self._seq, item))

    def pop(self) -> Tuple[int, Any]:
        when, _seq, item = heappop(self._heap)
        return when, item

    def peek(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def clear(self) -> None:
        self._heap = []
        self._seq = 0


class CalendarScheduler:
    """Calendar-queue scheduler: per-cycle FIFO buckets, a heap of cycles.

    The DES workload here is extremely tie-heavy -- persist acceptances,
    store-queue drains and same-cycle process wakeups cluster on shared
    cycles -- so the heap only ever carries *distinct* populated cycles.
    Pushing into an existing bucket is a list append; draining a bucket
    costs one ``heappop`` regardless of how many wakeups coalesced into
    it.  Between populated cycles the queue jumps directly to the next
    bucket (no per-cycle tick), which is what lets quiescent components
    cost nothing between persist events.

    Ordering contract: buckets preserve insertion order, and a bucket
    re-created for the cycle currently being drained (an event at ``now``
    scheduling another event at ``now``) appends *behind* the remaining
    items -- exactly the ``(when, seq)`` order of :class:`HeapScheduler`.
    """

    __slots__ = ("_buckets", "_cycles", "_cur_cycle", "_cur_bucket",
                 "_cur_idx", "_size")

    name = "calendar"

    def __init__(self) -> None:
        self._buckets: dict = {}     # cycle -> list of items (FIFO)
        self._cycles: List[int] = []  # heap of distinct pending cycles
        self._cur_cycle = -1
        self._cur_bucket: Optional[list] = None
        self._cur_idx = 0
        self._size = 0

    def push(self, when: int, item: Any) -> None:
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [item]
            heappush(self._cycles, when)
        else:
            bucket.append(item)
        self._size += 1

    def pop(self) -> Tuple[int, Any]:
        bucket = self._cur_bucket
        idx = self._cur_idx
        if bucket is None or idx >= len(bucket):
            # Advance the cursor: retire the drained bucket (same-cycle
            # late arrivals appended to it while it sat in the dict have
            # already been consumed if idx caught up) and open the next
            # earliest one.
            if bucket is not None:
                del self._buckets[self._cur_cycle]
            cycle = heappop(self._cycles)      # IndexError when empty
            bucket = self._buckets[cycle]
            self._cur_cycle = cycle
            self._cur_bucket = bucket
            idx = 0
        item = bucket[idx]
        bucket[idx] = None                     # drop the reference early
        self._cur_idx = idx + 1
        self._size -= 1
        return self._cur_cycle, item

    def peek(self) -> Optional[int]:
        bucket = self._cur_bucket
        if bucket is not None and self._cur_idx < len(bucket):
            return self._cur_cycle
        return self._cycles[0] if self._cycles else None

    def __len__(self) -> int:
        return self._size

    def clear(self) -> None:
        self._buckets = {}
        self._cycles = []
        self._cur_cycle = -1
        self._cur_bucket = None
        self._cur_idx = 0
        self._size = 0


SCHEDULERS = {
    HeapScheduler.name: HeapScheduler,
    CalendarScheduler.name: CalendarScheduler,
}

#: Scheduler used when :class:`Environment` is built without an explicit
#: choice.  The calendar queue is the production default; the heap stays
#: available for A/B comparisons (``Environment(scheduler="heap")``).
DEFAULT_SCHEDULER = CalendarScheduler.name


def make_scheduler(scheduler) -> Any:
    """Resolve a scheduler argument: None/name/instance -> instance."""
    if scheduler is None:
        scheduler = DEFAULT_SCHEDULER
    if isinstance(scheduler, str):
        try:
            return SCHEDULERS[scheduler]()
        except KeyError:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; choose from "
                f"{sorted(SCHEDULERS)}") from None
    return scheduler


# -------------------------------------------------------------------- events


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* with an optional value; all registered
    callbacks then run at the trigger time.  Triggering twice is an error
    -- use a fresh event per occurrence.
    """

    __slots__ = ("env", "callbacks", "_value", "_triggered", "_scheduled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now (schedules callbacks at the current time)."""
        if self._triggered or self._scheduled:
            raise SimulationError("event triggered twice")
        self._value = value
        self._scheduled = True
        self.env._schedule(self, 0)
        return self

    def _fire(self) -> None:
        self._triggered = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires (immediately if fired)."""
        if self._triggered:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._scheduled = True
        env._schedule(self, delay)


class AllOf(Event):
    """Fires once every child event has fired; value is the list of values."""

    __slots__ = ("_pending", "_children")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    @property
    def children(self) -> List[Event]:
        return list(self._children)

    def _on_child(self, _event: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not (self._triggered or self._scheduled):
            self.succeed([child.value for child in self._children])


class AnyOf(Event):
    """Fires when the first child event fires; value is that child's value.

    The child list is retained (mirroring :class:`AllOf`) and the
    winning event is exposed as :attr:`first_fired`, so a process that
    raced several events can tell which one actually woke it.
    """

    __slots__ = ("_children", "first_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        self.first_fired: Optional[Event] = None
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for child in self._children:
            child.add_callback(self._on_child)

    @property
    def children(self) -> List[Event]:
        return list(self._children)

    def _on_child(self, event: Event) -> None:
        if not (self._triggered or self._scheduled):
            self.first_fired = event
            self.succeed(event.value)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running generator; the Process is itself an event that fires when
    the generator returns (value = the generator's return value)."""

    __slots__ = ("_generator", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str = ""):
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off on the next scheduling round at the current time.
        start = Event(env)
        start.add_callback(self._resume)
        start.succeed()

    def _resume(self, event: Event) -> None:
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            if not (self._triggered or self._scheduled):
                self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, not an Event")
        target.add_callback(self._resume)

    def interrupt(self, reason: Any = None) -> None:
        """Throw :class:`Interrupted` into the generator at the current time."""
        def deliver(_event: Event) -> None:
            try:
                target = self._generator.throw(Interrupted(reason))
            except StopIteration as stop:
                if not (self._triggered or self._scheduled):
                    self.succeed(stop.value)
                return
            target.add_callback(self._resume)
        kick = Event(self.env)
        kick.add_callback(deliver)
        kick.succeed()


class Interrupted(Exception):
    """Delivered into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, reason: Any = None):
        super().__init__(reason)
        self.reason = reason


# --------------------------------------------------------------- environment


class Environment:
    """Owns the clock and the pending-event scheduler and drives the
    simulation.

    ``scheduler`` picks the queue implementation: ``"calendar"`` (default),
    ``"heap"``, or any object honouring the scheduler protocol documented
    in the module docstring.  All schedulers order identically (FIFO per
    cycle), so the choice is a pure performance knob -- results are
    bit-identical by contract.

    Also the anchor for observability: every component reachable from
    the environment shares its ``trace`` (:class:`~repro.sim.trace.Tracer`)
    and ``metrics`` (:class:`~repro.sim.metrics.Metrics`).  Both default
    to the shared null singletons, so an uninstrumented run pays one
    ``enabled`` attribute check per guarded site and nothing more.
    """

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None,
                 scheduler=None) -> None:
        self.now: int = 0
        self.trace: Tracer = NULL_TRACER if tracer is None else tracer
        self.metrics: Metrics = (NULL_METRICS if metrics is None
                                 else metrics)
        self._scheduler = make_scheduler(scheduler)
        # Counts every scheduling operation (events *and* bare callbacks).
        # Only ever used to break same-cycle ties in the HeapScheduler and
        # to keep snapshot payloads byte-identical across scheduler
        # implementations; never architectural state.
        self._sequence = 0

    @property
    def scheduler(self):
        """The live scheduler instance (read-only; swap via constructor)."""
        return self._scheduler

    # ------------------------------------------------------------ scheduling

    def _schedule(self, event: Event, delay: int) -> None:
        self._sequence += 1
        self._scheduler.push(self.now + delay, event)

    def schedule_at(self, when: int, callback: Callable[[], None]) -> None:
        """Run a bare callback at absolute cycle ``when`` (>= now).

        This is the allocation-free fast path for component wakeups: no
        :class:`Event` or tuple is created per hop -- the callable goes
        straight into the scheduler and is invoked with no arguments when
        its cycle comes up.  Use :meth:`event` + callbacks only when some
        other party needs to *wait* on the occurrence.
        """
        if when < self.now:
            raise SimulationError(
                f"schedule_at into the past: {when} < {self.now}")
        self._sequence += 1
        self._scheduler.push(when, callback)

    #: Established alias (pre-dates the scheduler redesign); identical
    #: fast-path semantics.
    call_at = schedule_at

    # ------------------------------------------------------- event factories

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int) -> Timeout:
        return Timeout(self, int(delay))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    # ------------------------------------------------------------ the loop

    def peek(self) -> Optional[int]:
        """Cycle of the next pending item, or None when the queue is
        empty.  O(1) under both shipped schedulers."""
        return self._scheduler.peek()

    def pending(self) -> int:
        """Number of pending scheduler items (0 == quiesced)."""
        return len(self._scheduler)

    def step(self) -> None:
        """Fire the single earliest pending item (advancing ``now``).

        Raises :class:`SimulationError` when nothing is pending -- an
        empty queue is a legitimate simulation state, so callers that are
        not sure should guard with :meth:`peek`.
        """
        scheduler = self._scheduler
        if not len(scheduler):
            raise SimulationError(
                "step() called with no pending events (guard with peek())")
        when, item = scheduler.pop()
        if when < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = when
        if isinstance(item, Event):
            item._fire()
        else:
            item()

    def run(self, until: Optional[int] = None,
            stop_event: Optional[Event] = None) -> int:
        """Drain the pending-event queue; returns the final simulated time.

        Semantics, exhaustively:

        * With no arguments, runs until the queue is completely empty.
        * ``until=T`` stops *before* firing the first item scheduled past
          ``T`` and sets ``now = T`` exactly (the queue keeps the unfired
          items; a later ``run`` call resumes them).  Items *at* ``T``
          still fire.
        * ``stop_event=e`` returns as soon as ``e`` has fired, checked
          before every item; items already scheduled for the same cycle
          but after ``e``'s trigger remain queued.
        * Both bounds may be combined; whichever trips first wins.
        """
        scheduler = self._scheduler
        pop = scheduler.pop
        peek = scheduler.peek
        # One tight loop, bound checks hoisted as locals; the generic
        # shape (both bounds) is rare enough to share the code path.
        while True:
            if stop_event is not None and stop_event._triggered:
                break
            when = peek()
            if when is None:
                break
            if until is not None and when > until:
                self.now = until
                break
            when, item = pop()
            self.now = when
            if isinstance(item, Event):
                item._fire()
            else:
                item()
        return self.now

    # -------------------------------------------------------- snapshotting

    def capture_state(self) -> dict:
        """Snapshot the clock.  Only legal at a quiesce point: pending
        events wrap live generators/callbacks and cannot be serialised,
        so a non-empty queue is a hard error, not a silent omission."""
        pending = len(self._scheduler)
        if pending:
            from ..snapshot.store import SnapshotError
            raise SnapshotError(
                f"environment queue not empty at capture "
                f"({pending} pending events)")
        return {"now": self.now, "sequence": self._sequence}

    def restore_state(self, state: dict) -> None:
        self.now = state["now"]
        # The sequence counter only breaks same-time scheduler ties among
        # events created *after* this point, so restoring it is about
        # byte-identical replay, not correctness.
        self._sequence = state["sequence"]
        # Reset the queue *and* any internal cursor (the calendar queue
        # keeps a partially-drained bucket between pops); absolute-time
        # callbacks registered after the restore re-arm against a clean
        # queue at the restored ``now``.
        self._scheduler.clear()
