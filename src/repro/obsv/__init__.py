"""Campaign-scale observability: event bus, metrics, profiler, history.

The package is wall-clock-side only: nothing in here touches the
simulator, so enabling any of it leaves ``SimResult`` payloads and
snapshot fingerprints bit-identical to an unobserved run (the
neutrality property ``tests/obsv/test_neutrality.py`` pins down).

* :mod:`repro.obsv.bus` -- schema-versioned JSON-Lines lifecycle
  events with run-context correlation IDs; multiprocessing-safe.
* :mod:`repro.obsv.registry` -- live counters/gauges/histograms fed
  by bus events; Prometheus text exposition + JSON snapshots.
* :mod:`repro.obsv.profiler` -- deterministic cycle attribution over
  trace spans; collapsed-stack output for flamegraph tools.
* :mod:`repro.obsv.history` -- cross-run bench trend reports
  (terminal sparklines + standalone HTML).
"""

from .bus import (  # noqa: F401
    ENVELOPE_FIELDS,
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    NULL_BUS,
    Bus,
    EventBus,
    JsonlSink,
    NullBus,
    QueueEmitter,
    bus_scope,
    drain_queue,
    get_bus,
    read_event_log,
    set_bus,
    validate_event_log,
    validate_events,
)
from .history import (  # noqa: F401
    BenchRecord,
    HistoryReport,
    collect_records,
)
from .profiler import (  # noqa: F401
    COMPONENT_PRIORITY,
    CycleProfile,
    profile_run,
)
from .registry import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TextfileExporter,
    parse_prometheus_text,
)

__all__ = [
    "ENVELOPE_FIELDS",
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "NULL_BUS",
    "Bus",
    "EventBus",
    "JsonlSink",
    "NullBus",
    "QueueEmitter",
    "bus_scope",
    "drain_queue",
    "get_bus",
    "read_event_log",
    "set_bus",
    "validate_event_log",
    "validate_events",
    "BenchRecord",
    "HistoryReport",
    "collect_records",
    "COMPONENT_PRIORITY",
    "CycleProfile",
    "profile_run",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TextfileExporter",
    "parse_prometheus_text",
]
