"""Deterministic cycle attribution: where do simulated cycles go?

Built on the PR 2 trace stream: a traced run's complete-spans describe
when each component was busy (per-core FASE spans, persist-path
store-issue->ring->WPQ-acceptance spans), and this module turns them
into an **exclusive partition of the cycle axis** -- every cycle in
``[0, total_cycles)`` is attributed to exactly one component, so the
per-component totals *sum to the run's total cycles* (the property a
flamegraph consumer assumes of collapsed stacks).

Attribution rule
----------------
At any cycle several spans may be active (eight cores run in
parallel; a persist span overlaps the FASE that issued it).  The cycle
goes to the *most specific* active span by fixed priority::

    pmc (WPQ admission wait) > persist-path (ring traversal)
        > spec-buffer > core (FASE execution) > idle

ties (same priority) break deterministically toward the
latest-started, then latest-recorded span -- like a sampling profiler
keeping the deepest frame.  The persist span's ``arrival``/``accept``
args split it into its ring-traversal and WPQ-wait halves, which is
exactly the per-durability-point attribution the Bento line of work
needs to make flush/fence optimization passes measurable.

Because the trace is deterministic (cycle-domain, seeded), the profile
is too: same spec, same profile, bit for bit.

Output
------
* :meth:`CycleProfile.collapsed` -- collapsed-stack lines
  (``repro;core;core0;commit 1234``) consumable by
  ``flamegraph.pl`` / speedscope / inferno.
* :meth:`CycleProfile.table` -- terminal summary with per-component
  cycles, share, and estimated wall time.
* :meth:`CycleProfile.to_dict` -- JSON for artifacts.

Non-exclusive *occupancy* (union of busy intervals per component,
overlap allowed) is reported alongside, because "the persist path was
busy 80% of the run" and "the persist path owned 12% of the cycles"
answer different questions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.trace import PHASE_COMPLETE, PHASE_INSTANT, TraceRecorder

#: Attribution priority, most specific first.  ``idle`` is implicit
#: (uncovered cycles).
COMPONENT_PRIORITY = ("pmc", "persist-path", "spec-buffer", "core")
IDLE = "idle"

_PRIORITY_INDEX = {name: index
                   for index, name in enumerate(COMPONENT_PRIORITY)}
#: Priority for spans on tracks this module has no mapping for --
#: below every known component, above idle.
_OTHER_PRIORITY = len(COMPONENT_PRIORITY)

ROOT = "repro"


def _component_for(track: str, cat: str) -> Tuple[str, str]:
    """(component, stack path under the root) for a span's track."""
    if track == "persist-path":
        return "persist-path", "persist-path"
    if track == "pmc":
        return "pmc", "pmc"
    if track.startswith("spec-buffer"):
        return "spec-buffer", "spec-buffer"
    if cat == "fase" or track.startswith("core"):
        return "core", f"core;{track}"
    return track, track


# Span tuple layout used by the sweep:
#   (start, end, priority, stack, seq)
_Span = Tuple[int, int, int, str, int]


def _spans_from_events(events: Iterable[tuple],
                       total_cycles: int) -> Tuple[List[_Span],
                                                   Dict[str, int]]:
    """Explode recorder events into attribution spans + instant counts.

    Persist-path spans split at their ``arrival`` arg: issue->arrival
    is ring traversal (``persist-path``), arrival->accept is WPQ
    admission wait (``pmc``)."""
    spans: List[_Span] = []
    instants: Dict[str, int] = {}
    seq = 0
    for phase, track, name, cat, ts, dur, args in events:
        if phase == PHASE_INSTANT:
            component, _path = _component_for(track, cat)
            instants[component] = instants.get(component, 0) + 1
            continue
        if phase != PHASE_COMPLETE:
            continue
        start = max(0, int(ts))
        end = min(int(ts) + max(int(dur), 0), total_cycles)
        if end <= start:
            continue
        component, path = _component_for(track, cat)
        priority = _PRIORITY_INDEX.get(component, _OTHER_PRIORITY)
        if component == "persist-path":
            arrival = (args or {}).get("arrival")
            if (isinstance(arrival, int)
                    and start < arrival < end):
                spans.append((start, arrival, priority,
                              f"{path};ring", seq))
                seq += 1
                spans.append((arrival, end, _PRIORITY_INDEX["pmc"],
                              "pmc;wpq-wait", seq))
            else:
                spans.append((start, end, priority, f"{path};ring",
                              seq))
        elif component == "core":
            leaf = (args or {}).get("outcome") or name.split()[0]
            spans.append((start, end, priority, f"{path};{leaf}", seq))
        else:
            spans.append((start, end, priority, f"{path};{name}", seq))
        seq += 1
    return spans, instants


def _sweep(spans: List[_Span],
           total_cycles: int) -> Dict[str, int]:
    """Exclusive attribution via a boundary sweep.

    Between two consecutive span boundaries the active set is
    constant; the segment's cycles go to the active span with the best
    ``(priority, -start, -seq)`` -- deterministic for any event order.
    Uncovered segments accumulate under ``idle``.
    """
    stacks: Dict[str, int] = {}
    if total_cycles <= 0:
        return stacks
    boundaries: List[Tuple[int, int, int]] = []  # (cycle, op, span_id)
    for span_id, (start, end, _p, _s, _q) in enumerate(spans):
        boundaries.append((start, 1, span_id))
        boundaries.append((end, 0, span_id))
    boundaries.sort()
    active: Dict[int, _Span] = {}
    cursor = 0
    idle_cycles = 0

    def charge(upto: int) -> None:
        nonlocal cursor, idle_cycles
        upto = min(upto, total_cycles)
        if upto <= cursor:
            return
        length = upto - cursor
        if active:
            winner = min(
                active.values(),
                key=lambda span: (span[2], -span[0], -span[4]))
            stacks[winner[3]] = stacks.get(winner[3], 0) + length
        else:
            idle_cycles += length
        cursor = upto

    for cycle, op, span_id in boundaries:
        charge(cycle)
        if op == 1:
            active[span_id] = spans[span_id]
        else:
            active.pop(span_id, None)
        if cursor >= total_cycles:
            break
    charge(total_cycles)
    if idle_cycles:
        stacks[IDLE] = stacks.get(IDLE, 0) + idle_cycles
    return stacks


def _occupancy(spans: List[_Span]) -> Dict[str, int]:
    """Union of busy intervals per top-level component (overlap OK)."""
    by_component: Dict[str, List[Tuple[int, int]]] = {}
    for start, end, _priority, stack, _seq in spans:
        component = stack.split(";", 1)[0]
        by_component.setdefault(component, []).append((start, end))
    union: Dict[str, int] = {}
    for component, intervals in by_component.items():
        intervals.sort()
        covered = 0
        open_start, open_end = intervals[0]
        for start, end in intervals[1:]:
            if start > open_end:
                covered += open_end - open_start
                open_start, open_end = start, end
            else:
                open_end = max(open_end, end)
        covered += open_end - open_start
        union[component] = covered
    return union


class CycleProfile:
    """The attribution result for one run."""

    def __init__(self, stacks: Dict[str, int], total_cycles: int,
                 occupancy: Dict[str, int],
                 instants: Dict[str, int],
                 wall_s: Optional[float] = None,
                 label: str = ""):
        self.stacks = dict(stacks)
        self.total_cycles = total_cycles
        self.occupancy = dict(occupancy)
        self.instants = dict(instants)
        self.wall_s = wall_s
        self.label = label

    # ---------------------------------------------------------- queries

    @property
    def components(self) -> Dict[str, int]:
        """Exclusive cycles per top-level component.  Sums exactly to
        ``total_cycles`` (the partition property)."""
        out: Dict[str, int] = {}
        for stack, cycles in self.stacks.items():
            component = stack.split(";", 1)[0]
            out[component] = out.get(component, 0) + cycles
        return out

    def check_partition(self) -> None:
        total = sum(self.stacks.values())
        if total != self.total_cycles:
            raise AssertionError(
                f"attribution lost cycles: stacks sum to {total}, "
                f"run has {self.total_cycles}")

    # ----------------------------------------------------------- export

    def collapsed(self) -> str:
        """Collapsed-stack text: ``root;frame;...;leaf cycles`` lines,
        sorted for stable diffs.  Feed to flamegraph.pl / speedscope /
        inferno."""
        lines = [f"{ROOT};{stack} {cycles}"
                 for stack, cycles in sorted(self.stacks.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def save_collapsed(self, path: str) -> str:
        with open(path, "w") as handle:
            handle.write(self.collapsed())
        return path

    def table(self) -> str:
        """Terminal summary, widest component first."""
        title = (f"Cycle attribution: {self.label}" if self.label
                 else "Cycle attribution")
        header = (f"{'component':<16}{'cycles':>12}{'share':>9}"
                  f"{'busy':>9}{'events':>9}"
                  + (f"{'est wall':>11}" if self.wall_s else ""))
        lines = [title, "=" * len(header), header, "-" * len(header)]
        components = self.components
        seen = set(components) | set(self.occupancy) | set(self.instants)
        order = sorted(seen,
                       key=lambda c: (-components.get(c, 0),
                                      -self.occupancy.get(c, 0), c))
        for component in order:
            cycles = components.get(component, 0)
            share = (cycles / self.total_cycles
                     if self.total_cycles else 0.0)
            busy = self.occupancy.get(component, 0)
            busy_share = (busy / self.total_cycles
                          if self.total_cycles else 0.0)
            line = (f"{component:<16}{cycles:>12}{share:>8.1%}"
                    f"{busy_share:>8.1%}"
                    f"{self.instants.get(component, 0):>9}")
            if self.wall_s:
                line += f"{share * self.wall_s:>10.2f}s"
            lines.append(line)
        lines.append("-" * len(header))
        lines.append(f"{'total':<16}{self.total_cycles:>12}"
                     f"{1.0 if self.total_cycles else 0.0:>8.1%}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "total_cycles": self.total_cycles,
            "wall_s": self.wall_s,
            "components": self.components,
            "occupancy": self.occupancy,
            "instants": self.instants,
            "stacks": dict(sorted(self.stacks.items())),
        }


def profile_run(recorder: TraceRecorder, total_cycles: int,
                wall_s: Optional[float] = None,
                label: str = "") -> CycleProfile:
    """Attribute a traced run's cycles; the partition is checked
    (``sum(stacks) == total_cycles``) before returning."""
    spans, instants = _spans_from_events(recorder.events(),
                                         total_cycles)
    stacks = _sweep(spans, total_cycles)
    profile = CycleProfile(stacks, total_cycles,
                           occupancy=_occupancy(spans),
                           instants=instants, wall_s=wall_s,
                           label=label)
    profile.check_partition()
    return profile
