"""Live aggregate metrics: counters/gauges/histograms + Prometheus text.

A :class:`MetricsRegistry` is the campaign-scale sibling of the
per-run :class:`repro.sim.metrics.MetricsCollector`: where the
collector windows *simulated-cycle* series inside one run, the
registry aggregates *wall-clock* operational metrics across a whole
sweep or campaign -- trials/sec, worker utilization, cache hit ratio,
engine cycles/sec, WPQ depth percentiles -- and exposes them two ways:

* :meth:`MetricsRegistry.to_prometheus` -- the Prometheus text
  exposition format (``# HELP``/``# TYPE`` + samples), written
  periodically to a textfile by :class:`TextfileExporter` (the
  node-exporter textfile-collector pattern: scrape-able without a
  server).
* :meth:`MetricsRegistry.snapshot` -- a JSON-ready dict folded into
  ``SweepResult.stats["obsv"]`` / ``CampaignReport.to_dict()["obsv"]``
  at the end of a run.

:meth:`MetricsRegistry.observe_event` is a bus subscriber that derives
the standard metric set from lifecycle events, so wiring is one line:
``bus.subscribe(registry.observe_event)``.
"""

from __future__ import annotations

import bisect
import math
import os
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

# Default histogram buckets (seconds) for per-spec / per-trial wall
# times: sub-second cells through multi-minute simulations.
SECONDS_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
                   60.0, 120.0, 300.0)
#: Buckets for engine throughput (simulated cycles per wall second).
CYCLES_PER_SEC_BUCKETS = (1e3, 1e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 2e6,
                          5e6)
#: Buckets for queue-depth style gauges (WPQ occupancy, restore depth
#: rides its own scale below).
DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)
#: Buckets for snapshot-restore depth in cycles (how far a warm trial
#: started ahead of cycle zero).
CYCLE_DEPTH_BUCKETS = (1e2, 1e3, 1e4, 1e5, 1e6, 1e7)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> LabelItems:
    return tuple(sorted((labels or {}).items()))


def _format_labels(items: LabelItems, extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in items]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Metric:
    """One named metric family: help text, type, per-label-set state."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text
        self.series: Dict[LabelItems, object] = {}

    def exposition(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for labels in sorted(self.series):
            lines.extend(self._series_lines(labels))
        return lines

    def _series_lines(self, labels: LabelItems) -> List[str]:
        raise NotImplementedError


class Counter(_Metric):
    kind = "counter"

    def inc(self, amount: float = 1,
            labels: Optional[Dict[str, str]] = None) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0) + amount

    def value(self, labels: Optional[Dict[str, str]] = None) -> float:
        return self.series.get(_label_key(labels), 0)

    def _series_lines(self, labels: LabelItems) -> List[str]:
        return [f"{self.name}{_format_labels(labels)} "
                f"{_format_value(self.series[labels])}"]


class Gauge(_Metric):
    kind = "gauge"

    def set(self, value: float,
            labels: Optional[Dict[str, str]] = None) -> None:
        self.series[_label_key(labels)] = value

    def value(self, labels: Optional[Dict[str, str]] = None) -> float:
        return self.series.get(_label_key(labels), 0)

    def _series_lines(self, labels: LabelItems) -> List[str]:
        return [f"{self.name}{_format_labels(labels)} "
                f"{_format_value(self.series[labels])}"]


class _HistogramState:
    __slots__ = ("counts", "total", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * (n_buckets + 1)   # +1 for +Inf
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Cumulative-bucket histogram (the Prometheus flavor).

    ``percentile`` interpolates within the winning bucket, which is
    exact enough for the p50/p90/p99 summary the JSON snapshot carries.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float] = SECONDS_BUCKETS):
        super().__init__(name, help_text)
        self.buckets = sorted(float(b) for b in buckets)
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")

    def observe(self, value: float,
                labels: Optional[Dict[str, str]] = None) -> None:
        key = _label_key(labels)
        state = self.series.get(key)
        if state is None:
            state = _HistogramState(len(self.buckets))
            self.series[key] = state
        state.counts[bisect.bisect_left(self.buckets, value)] += 1
        state.total += value
        state.count += 1

    def percentile(self, q: float,
                   labels: Optional[Dict[str, str]] = None) -> float:
        """Approximate ``q``-th percentile (0 <= q <= 100)."""
        state = self.series.get(_label_key(labels))
        if state is None or state.count == 0:
            return 0.0
        rank = q / 100.0 * state.count
        cumulative = 0
        lower = 0.0
        for index, upper in enumerate(self.buckets):
            bucket_n = state.counts[index]
            if cumulative + bucket_n >= rank and bucket_n:
                within = (rank - cumulative) / bucket_n
                return lower + (upper - lower) * min(max(within, 0.0),
                                                     1.0)
            cumulative += bucket_n
            lower = upper
        return self.buckets[-1]

    def _series_lines(self, labels: LabelItems) -> List[str]:
        state = self.series[labels]
        lines = []
        cumulative = 0
        for index, upper in enumerate(self.buckets):
            cumulative += state.counts[index]
            le = _format_labels(labels, f'le="{_format_value(upper)}"')
            lines.append(f"{self.name}_bucket{le} {cumulative}")
        le = _format_labels(labels, 'le="+Inf"')
        lines.append(f"{self.name}_bucket{le} {state.count}")
        lines.append(f"{self.name}_sum{_format_labels(labels)} "
                     f"{_format_value(state.total)}")
        lines.append(f"{self.name}_count{_format_labels(labels)} "
                     f"{state.count}")
        return lines


class MetricsRegistry:
    """Named metric families + the event-derived standard set."""

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}
        self.created_unix = time.time()
        self._sweep_started: Dict[str, float] = {}

    # ---------------------------------------------------- registration

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = SECONDS_BUCKETS
                  ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help_text, buckets=buckets)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise ValueError(f"{name!r} is a {metric.kind}, "
                             f"not a histogram")
        return metric

    def _get_or_create(self, cls, name: str, help_text: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help_text)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(f"{name!r} is a {metric.kind}, "
                             f"not a {cls.kind}")
        return metric

    # -------------------------------------------------- the standard set

    def observe_event(self, event: Dict) -> None:
        """Bus subscriber: fold one lifecycle event into the registry.

        Unknown kinds count toward ``repro_events_total`` only, so the
        registry stays forward-compatible with new event kinds.
        """
        kind = event.get("kind", "?")
        self.counter("repro_events_total",
                     "Lifecycle events observed on the bus"
                     ).inc(labels={"kind": kind})
        handler = getattr(self, f"_on_{kind}", None)
        if handler is not None:
            handler(event)

    # Per-kind derivations.  Each is tolerant of missing fields: a
    # half-filled event must never raise out of the hot path.

    def _on_sweep_start(self, event: Dict) -> None:
        self.gauge("repro_sweep_jobs",
                   "Worker processes of the active sweep"
                   ).set(event.get("jobs", 1))
        self.gauge("repro_sweep_specs",
                   "Spec count of the active sweep"
                   ).set(event.get("n_specs", 0))
        self._sweep_started[event.get("run_id", "-")] = \
            event.get("ts", time.time())

    def _on_spec_finish(self, event: Dict) -> None:
        source = str(event.get("source", "?"))
        self.counter("repro_specs_total", "Completed sweep specs"
                     ).inc(labels={"source": source})
        elapsed = event.get("elapsed_s")
        if elapsed is not None and not event.get("cache_hit"):
            self.histogram("repro_spec_seconds",
                           "Wall time per simulated spec"
                           ).observe(float(elapsed))
            cycles = event.get("cycles")
            if cycles and elapsed > 0:
                self.histogram(
                    "repro_engine_cycles_per_sec",
                    "Simulated cycles per wall second per spec",
                    buckets=CYCLES_PER_SEC_BUCKETS,
                ).observe(cycles / elapsed)
        if event.get("retried"):
            self.counter("repro_spec_retries_total",
                         "Specs retried serially after a worker "
                         "failure").inc()
        for depth in event.get("wpq_depth_means") or ():
            self.histogram("repro_wpq_depth",
                           "Per-window mean WPQ occupancy",
                           buckets=DEPTH_BUCKETS).observe(depth)

    def _on_spec_error(self, event: Dict) -> None:
        self.counter("repro_spec_errors_total",
                     "Specs that failed in a worker").inc()

    def _on_cache_hit(self, event: Dict) -> None:
        self.counter("repro_cache_hits_total",
                     "Sweep specs served from the result cache").inc()

    def _on_cache_miss(self, event: Dict) -> None:
        self.counter("repro_cache_misses_total",
                     "Sweep specs that had to simulate").inc()

    def _on_sweep_finish(self, event: Dict) -> None:
        self.counter("repro_sweeps_total", "Completed sweeps").inc()
        elapsed = float(event.get("elapsed_s") or 0.0)
        jobs = self.gauge("repro_sweep_jobs").value() or 1
        busy = float(event.get("busy_s") or 0.0)
        if elapsed > 0:
            self.gauge(
                "repro_worker_utilization",
                "Busy worker-seconds / (wall x jobs) of the last sweep"
            ).set(round(min(busy / (elapsed * jobs), 1.0), 4))
            n_simulated = event.get("cache_misses", 0)
            self.gauge("repro_specs_per_sec",
                       "Specs simulated per wall second, last sweep"
                       ).set(round(n_simulated / elapsed, 4))

    def _on_task_finish(self, event: Dict) -> None:
        self.counter("repro_tasks_total",
                     "Completed generic fan-out tasks").inc()
        elapsed = event.get("elapsed_s")
        if elapsed is not None:
            self.histogram("repro_task_seconds",
                           "Wall time per fan-out task"
                           ).observe(float(elapsed))

    def _on_batch_finish(self, event: Dict) -> None:
        self.counter("repro_batches_total",
                     "Completed affinity-batched fan-out chunks").inc()
        size = event.get("size")
        if size is not None:
            self.histogram("repro_batch_size",
                           "Items per shipped batch chunk",
                           buckets=DEPTH_BUCKETS).observe(float(size))
        elapsed = event.get("elapsed_s")
        if elapsed is not None:
            self.histogram("repro_batch_seconds",
                           "Wall time per batch chunk"
                           ).observe(float(elapsed))

    def _on_trial_finish(self, event: Dict) -> None:
        consistent = ("true" if event.get("consistent", True)
                      else "false")
        self.counter("repro_trials_total", "Completed crash trials"
                     ).inc(labels={"consistent": consistent})
        violations = event.get("violations")
        if violations:
            self.counter("repro_trial_violations_total",
                         "Oracle + structural violations observed"
                         ).inc(violations)

    def _on_oracle_violation(self, event: Dict) -> None:
        self.counter(
            "repro_oracle_violations_total",
            "Persist-order oracle violations by kind"
        ).inc(labels={"kind": str(event.get("violation_kind", "?"))})

    def _on_campaign_finish(self, event: Dict) -> None:
        self.counter("repro_campaigns_total",
                     "Completed crash campaigns").inc()
        elapsed = float(event.get("elapsed_s") or 0.0)
        trials = event.get("trials", 0)
        if elapsed > 0:
            self.gauge("repro_trials_per_sec",
                       "Trials per wall second of the last campaign"
                       ).set(round(trials / elapsed, 4))

    def _on_image_enumerated(self, event: Dict) -> None:
        labels = {"workload": str(event.get("workload", "?")),
                  "design": str(event.get("design", "?"))}
        n_images = event.get("n_images", 0)
        self.counter("repro_images_enumerated_total",
                     "Durable-state images enumerated per cell"
                     ).inc(n_images, labels=labels)
        if event.get("truncated"):
            self.counter("repro_image_enumerations_truncated_total",
                         "Crash cycles whose durable-state set hit the "
                         "enumeration budget").inc(labels=labels)
        self.histogram("repro_images_per_crash_cycle",
                       "Enumerated durable states per crash cycle",
                       buckets=DEPTH_BUCKETS).observe(float(n_images))

    def _on_image_check(self, event: Dict) -> None:
        consistent = ("true" if event.get("consistent", True)
                      else "false")
        self.counter("repro_image_checks_total",
                     "Recovery runs over enumerated durable states"
                     ).inc(labels={"consistent": consistent})
        if not event.get("consistent", True):
            self.counter("repro_image_check_failures_total",
                         "Enumerated images recovery failed to "
                         "converge from").inc()

    def _on_snapshot_restore(self, event: Dict) -> None:
        if event.get("outcome") == "cold_fallback":
            # A restore that should have been warm degraded to a cold
            # start (damaged store): silent performance loss, surfaced.
            self.counter("repro_snapshot_cold_fallbacks_total",
                         "Trials degraded to a cold start by snapshot "
                         "damage").inc()
            return
        source = str(event.get("source", "store"))
        self.counter("repro_snapshot_restores_total",
                     "Trial restores by payload source "
                     "(resident LRU, store read, cold start)"
                     ).inc(labels={"source": source})
        total = sum(self.counter("repro_snapshot_restores_total")
                    .series.values())
        warm = sum(
            value for labels, value in
            self.counter("repro_snapshot_restores_total").series.items()
            if dict(labels).get("source") != "cold")
        if total:
            self.gauge("repro_rung_cache_hit_ratio",
                       "Warm restores served without rebuilding "
                       "(resident + store) / all restores"
                       ).set(round(warm / total, 4))
        rung_cycle = event.get("rung_cycle")
        if rung_cycle:
            self.histogram("repro_snapshot_restore_depth_cycles",
                           "Simulated cycles skipped by restoring a "
                           "rung instead of cold-starting",
                           buckets=CYCLE_DEPTH_BUCKETS
                           ).observe(float(rung_cycle))

    def _on_rung_capture(self, event: Dict) -> None:
        self.counter("repro_rungs_captured_total",
                     "Snapshot-ladder rungs captured").inc()

    def _on_task_retry(self, event: Dict) -> None:
        self.counter("repro_task_retries_total",
                     "Task re-executions after a failure "
                     "(sweep serial fallback + service pool)").inc()

    def _on_task_quarantine(self, event: Dict) -> None:
        self.counter("repro_task_quarantines_total",
                     "Poison tasks set aside after exhausting the "
                     "retry policy").inc()

    def _on_steal(self, event: Dict) -> None:
        self.counter("repro_steals_total",
                     "Tasks stolen by idle workers from the busiest "
                     "queue").inc()

    def _on_job_submitted(self, event: Dict) -> None:
        self.counter("repro_jobs_submitted_total",
                     "Jobs accepted by the service"
                     ).inc(labels={"kind": str(event.get("job_kind",
                                                         "?"))})

    def _on_job_finish(self, event: Dict) -> None:
        state = str(event.get("state", "?"))
        self.counter("repro_jobs_total",
                     "Jobs finished by terminal state"
                     ).inc(labels={"state": state})
        elapsed = event.get("elapsed_s")
        if elapsed is not None and state == "done":
            self.histogram("repro_job_seconds",
                           "Submit-to-done wall time per completed job"
                           ).observe(float(elapsed))

    def _on_job_progress(self, event: Dict) -> None:
        total = event.get("total")
        if total:
            self.gauge("repro_job_progress_ratio",
                       "Completed tasks / planned tasks of the "
                       "running job"
                       ).set(round(event.get("done", 0) / total, 4))

    # ------------------------------------------------------------ export

    def to_prometheus(self) -> str:
        """The Prometheus text exposition (version 0.0.4) document."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].exposition())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict:
        """JSON-ready summary: every family with values, histograms as
        count/sum/percentiles."""
        out: Dict[str, Dict] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                series = {}
                for labels, state in sorted(metric.series.items()):
                    series[_format_labels(labels) or "_"] = {
                        "count": state.count,
                        "sum": round(state.total, 6),
                        "p50": round(metric.percentile(50, dict(labels)),
                                     6),
                        "p90": round(metric.percentile(90, dict(labels)),
                                     6),
                        "p99": round(metric.percentile(99, dict(labels)),
                                     6),
                    }
            else:
                series = {
                    (_format_labels(labels) or "_"): value
                    for labels, value in sorted(metric.series.items())}
            out[name] = {"type": metric.kind, "series": series}
        return out


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse a text exposition back into ``{sample_name: value}``.

    Intentionally minimal (no escapes-in-labels support): enough for
    tests and the bench-history ingester to round-trip what
    :meth:`MetricsRegistry.to_prometheus` writes, and to fail loudly
    on malformed lines.
    """
    samples: Dict[str, float] = {}
    for line_no, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name, value = line.rsplit(None, 1)
        except ValueError:
            raise ValueError(f"line {line_no}: not 'name value': "
                             f"{line!r}") from None
        samples[name] = (math.inf if value == "+Inf"
                         else float(value))
    return samples


class TextfileExporter:
    """Writes the exposition to a textfile, rate-limited + atomic.

    Subscribe :meth:`on_event` to a bus: every event refreshes the file
    at most once per ``every_s`` seconds (plus a forced final
    :meth:`write` at end of run).  Writes are tempfile+rename so a
    scraper never reads a torn file -- the same discipline as the
    artifact store.
    """

    def __init__(self, registry: MetricsRegistry, path: str,
                 every_s: float = 2.0,
                 clock=time.monotonic):
        self.registry = registry
        self.path = path
        self.every_s = every_s
        self._clock = clock
        self._last_write: Optional[float] = None
        self.writes = 0

    def on_event(self, event: Dict) -> None:
        now = self._clock()
        if (self._last_write is not None
                and now - self._last_write < self.every_s):
            return
        self.write()

    def write(self) -> str:
        parent = os.path.dirname(os.path.abspath(self.path)) or "."
        os.makedirs(parent, exist_ok=True)
        fd, temp = tempfile.mkstemp(dir=parent, suffix=".prom.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(self.registry.to_prometheus())
            os.replace(temp, self.path)
        except BaseException:
            if os.path.exists(temp):
                os.unlink(temp)
            raise
        self._last_write = self._clock()
        self.writes += 1
        return self.path
