"""The structured event bus: versioned JSON-Lines lifecycle telemetry.

Every sweep, campaign, and snapshot operation the harness performs can
be narrated as a stream of small, schema-versioned JSON events --
``sweep_start``, ``spec_finish``, ``trial_finish``, ``cache_hit``,
``snapshot_restore``, ``oracle_violation``, ... -- each carrying the
active :mod:`repro.telemetry` run context (``run_id``/``spec_hash``)
as correlation IDs plus a bus-assigned monotonic ``seq`` so a merged
log is totally ordered.

Three implementations share one interface (the same null-object
pattern as :class:`repro.sim.trace.Tracer`):

* :class:`NullBus` -- the default everywhere; ``enabled`` is ``False``
  and ``emit`` is a no-op, so instrumented sites pay one attribute
  load when observability is off.
* :class:`EventBus` -- the in-process hub: stamps events, fans them
  out to subscribers (a :class:`JsonlSink`, a
  :class:`repro.obsv.registry.MetricsRegistry`, a progress adapter).
* :class:`QueueEmitter` -- the worker side of a multiprocessing pool:
  events go onto a ``multiprocessing`` queue with a per-worker
  sequence number and origin pid; the parent drains the queue with
  :func:`drain_queue` and merges them into its bus (which re-stamps
  the global ``seq``, preserving per-worker order).

Emission never touches the simulator: events are wall-clock-side
bookkeeping, so an enabled bus cannot perturb ``SimResult`` payloads
or snapshot fingerprints.

The module-level *current bus* (:func:`get_bus` / :func:`bus_scope`)
is how deep call sites (snapshot restores inside pool workers, the
campaign engine) find the active bus without threading it through
every signature -- mirroring :func:`repro.telemetry.run_context`.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, TextIO

from ..telemetry import current_context, get_logger

log = get_logger("obsv.bus")

#: Version of the event payload written to JSON-Lines logs.  Bump when
#: required fields are added/renamed/removed; ``validate_events`` checks
#: it so consumers fail fast on a log they cannot interpret.
EVENT_SCHEMA_VERSION = 1

#: Required per-kind payload fields (beyond the envelope).  This is the
#: machine-readable half of the schema; docs/OBSERVABILITY.md is the
#: prose half.  An event log containing an unknown kind or missing a
#: required field fails validation.
EVENT_KINDS: Dict[str, tuple] = {
    # -- sweeps (ParallelExecutor.run)
    "sweep_start": ("n_specs", "jobs"),
    "sweep_finish": ("n_specs", "cache_hits", "cache_misses",
                     "retries", "elapsed_s"),
    "spec_start": ("index", "describe"),
    "spec_finish": ("index", "describe", "elapsed_s", "cache_hit",
                    "retried", "source"),
    "spec_error": ("index", "describe", "error"),
    "cache_hit": ("index", "describe"),
    "cache_miss": ("index", "describe"),
    # -- generic fan-out (ParallelExecutor.map)
    "task_start": ("index", "label"),
    "task_finish": ("index", "label", "elapsed_s"),
    "task_error": ("index", "label", "error"),
    # -- batched fan-out (ParallelExecutor.map_batched): one pair per
    #    shipped (group, chunk) task rather than one per item.
    "batch_start": ("index", "label", "size"),
    "batch_finish": ("index", "label", "size", "elapsed_s"),
    # -- retry/recovery (repro.harness.retry + the service pool): one
    #    task_retry per re-execution (the old silent serial fallback is
    #    gone), one task_quarantine when a poison task exhausts its
    #    policy and is set aside instead of sinking the pool.
    "task_retry": ("label", "attempt", "delay_s", "error"),
    "task_quarantine": ("label", "attempts", "error"),
    # -- work-stealing pool (repro.service.workers): an idle worker
    #    took a task from the tail of the busiest peer's queue.
    "steal": ("thief", "victim", "label"),
    # -- graceful shutdown: a SIGINT/SIGTERM stopped a CLI command or
    #    the service mid-flight; partial artifacts were flushed.
    "interrupted": ("signal_name", "command"),
    # -- service jobs (repro.service): lifecycle of one submitted job.
    "job_submitted": ("job_id", "job_kind"),
    "job_start": ("job_id", "job_kind"),
    "job_progress": ("job_id", "done", "total"),
    "job_finish": ("job_id", "state", "elapsed_s"),
    # -- crash campaigns (repro.validation.campaign)
    "campaign_start": ("workloads", "designs", "planner", "fault",
                       "budget"),
    "campaign_finish": ("cells", "trials", "failures", "consistent",
                        "elapsed_s"),
    "cell_profile": ("workload", "design", "total_cycles"),
    "round_start": ("round", "rounds", "n_trials"),
    "trial_finish": ("workload", "design", "crash_cycle", "consistent",
                     "violations", "restored_from_cycle"),
    "oracle_violation": ("workload", "design", "crash_cycle",
                         "violation_kind", "cycle"),
    "shrink_finish": ("workload", "design", "earliest_cycle",
                      "minimal_cycle", "trials"),
    # -- durable-state enumeration (repro.crashstates.checker)
    "image_enumerated": ("workload", "design", "crash_cycle", "n_images",
                         "truncated", "model"),
    "image_check": ("workload", "design", "crash_cycle", "consistent",
                    "n_violations"),
    # -- snapshots (repro.snapshot.manager)
    "rung_capture": ("cycle", "rung"),
    # Optional fields: ``source`` ("resident"|"store"|"cold") says
    # where the restored payload came from; ``outcome="cold_fallback"``
    # (+ ``error``) marks a restore that degraded to a cold start.
    "snapshot_restore": ("crash_cycle", "rung_cycle", "rung"),
    # -- free-form marker (CLI open/close notes)
    "note": ("text",),
}

#: Envelope fields every event carries, stamped by the bus.
ENVELOPE_FIELDS = ("schema", "seq", "ts", "kind", "run_id", "spec_hash",
                   "origin")


class Bus:
    """Interface + null behaviour: subclasses override to record.

    ``enabled`` is a class attribute so the guard at instrumented
    sites is a plain attribute load (the tracer/metrics convention).
    """

    enabled = False
    #: A :class:`repro.obsv.registry.MetricsRegistry` when one is
    #: attached (the harness folds its snapshot into run artifacts).
    registry = None

    def emit(self, kind: str, **fields) -> Optional[Dict]:
        """Emit one event; returns the stamped event (None when off)."""
        return None

    def subscribe(self, callback: Callable[[Dict], None]) -> None:
        """No-op on the null bus (nothing will ever be delivered)."""

    def unsubscribe(self, callback: Callable[[Dict], None]) -> None:
        """No-op on the null bus."""


class NullBus(Bus):
    """The zero-overhead default: drops everything."""

    __slots__ = ()


#: Shared do-nothing instance.
NULL_BUS = NullBus()


class EventBus(Bus):
    """In-process hub: stamps the envelope and fans out to subscribers.

    Thread-safe for ``emit`` (the sequence counter and subscriber list
    are lock-protected); subscriber callbacks run inline on the
    emitting thread, so they must be cheap and must not raise -- a
    raising subscriber is unsubscribed and logged rather than allowed
    to sink the run.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.time,
                 registry=None):
        self._clock = clock
        self._lock = threading.Lock()
        self._seq = 0
        self._subscribers: List[Callable[[Dict], None]] = []
        self.registry = registry
        self.emitted = 0

    # ---------------------------------------------------- subscriptions

    def subscribe(self, callback: Callable[[Dict], None]) -> None:
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Dict], None]) -> None:
        with self._lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    # --------------------------------------------------------- emission

    def emit(self, kind: str, **fields) -> Dict:
        context = current_context()
        event = {
            "schema": EVENT_SCHEMA_VERSION,
            "kind": kind,
            "run_id": context["run_id"],
            "spec_hash": context["spec_hash"],
            "origin": os.getpid(),
        }
        event.update(fields)
        return self._deliver(event)

    def merge(self, event: Dict) -> Dict:
        """Adopt a worker-emitted event: keep its payload, context and
        origin pid, re-stamp the *global* ``seq`` (per-worker order is
        preserved because workers emit in order and the queue is FIFO
        per process; the worker's own counter rides along as
        ``worker_seq``)."""
        return self._deliver(dict(event))

    def _deliver(self, event: Dict) -> Dict:
        with self._lock:
            event["seq"] = self._seq
            self._seq += 1
            event.setdefault("ts", round(self._clock(), 6))
            subscribers = list(self._subscribers)
            self.emitted += 1
        dead = []
        for callback in subscribers:
            try:
                callback(event)
            except Exception:  # noqa: BLE001 -- observability must not
                log.exception("event subscriber failed; unsubscribing")
                dead.append(callback)
        for callback in dead:
            self.unsubscribe(callback)
        return event


class QueueEmitter(Bus):
    """Worker-side bus: events go onto a multiprocessing queue.

    Installed as the process-global bus by the pool initializer (see
    :func:`repro.harness.sweep._pool_initializer`); the parent merges
    with :func:`drain_queue`.  The envelope is stamped worker-side
    (context, pid, wall time, per-worker ``worker_seq``); the global
    ``seq`` is assigned at merge time.
    """

    enabled = True

    def __init__(self, queue):
        self._queue = queue
        self._worker_seq = 0

    def emit(self, kind: str, **fields) -> Dict:
        context = current_context()
        event = {
            "schema": EVENT_SCHEMA_VERSION,
            "kind": kind,
            "run_id": context["run_id"],
            "spec_hash": context["spec_hash"],
            "origin": os.getpid(),
            "ts": round(time.time(), 6),
            "worker_seq": self._worker_seq,
        }
        event.update(fields)
        self._worker_seq += 1
        try:
            self._queue.put(event)
        except (OSError, ValueError):
            # A torn-down queue (parent exited mid-drain) must not
            # kill the worker's real work.
            pass
        return event


def drain_queue(queue, bus: Bus) -> int:
    """Merge every queued worker event into ``bus``; returns the count.

    Non-blocking: drains whatever has arrived so far.  Call it
    opportunistically while results stream in and once after the pool
    closes (worker queues are flushed by process exit).
    """
    merged = 0
    if queue is None or not bus.enabled:
        return merged
    while True:
        try:
            if queue.empty():
                break
            event = queue.get()
        except (OSError, ValueError, EOFError):
            break
        bus.merge(event)
        merged += 1
    return merged


# ----------------------------------------------------------- current bus


_current_bus: Bus = NULL_BUS


def get_bus() -> Bus:
    """The process-current bus (the shared :data:`NULL_BUS` when
    observability is off)."""
    return _current_bus


def set_bus(bus: Optional[Bus]) -> Bus:
    """Install ``bus`` as the process-current bus; returns the previous
    one.  ``None`` restores the null bus."""
    global _current_bus
    previous = _current_bus
    _current_bus = bus if bus is not None else NULL_BUS
    return previous


@contextlib.contextmanager
def bus_scope(bus: Bus) -> Iterator[Bus]:
    """Scope the process-current bus (the CLI wraps each command)."""
    previous = set_bus(bus)
    try:
        yield bus
    finally:
        set_bus(previous)


# ------------------------------------------------------------ JSONL sink


class JsonlSink:
    """Bus subscriber writing one JSON object per line.

    Lines are flushed per event so a crashed run leaves a readable
    prefix; ``sort_keys`` keeps the envelope diffable.  ``mode="a"``
    appends instead of truncating -- the service's per-job event logs
    span multiple process lifetimes (a resumed job keeps narrating
    into the same file).
    """

    def __init__(self, path: str, mode: str = "w"):
        if mode not in ("w", "a"):
            raise ValueError(f"JsonlSink mode must be 'w' or 'a', "
                             f"not {mode!r}")
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._handle: Optional[TextIO] = open(path, mode)
        self.written = 0

    def __call__(self, event: Dict) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(event, sort_keys=True,
                                      separators=(",", ":")))
        self._handle.write("\n")
        self._handle.flush()
        self.written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ------------------------------------------------------------ validation


def read_event_log(path: str) -> List[Dict]:
    """Parse a JSON-Lines event log into a list of event dicts."""
    events = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not valid JSON: {exc}") from None
    return events


def validate_events(events: List[Dict]) -> List[str]:
    """Schema-check an event stream; returns problems (empty == valid).

    Checks the envelope (schema version, required fields, strictly
    increasing ``seq`` -- the "single ordered log" property) and each
    kind's required payload fields.
    """
    problems: List[str] = []
    last_seq = None
    for index, event in enumerate(events):
        where = f"event[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if event.get("schema") != EVENT_SCHEMA_VERSION:
            problems.append(
                f"{where}: schema {event.get('schema')!r} != "
                f"{EVENT_SCHEMA_VERSION}")
        for field in ENVELOPE_FIELDS:
            if field not in event:
                problems.append(f"{where}: missing envelope field "
                                f"{field!r}")
        kind = event.get("kind")
        if kind not in EVENT_KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
        else:
            for field in EVENT_KINDS[kind]:
                if field not in event:
                    problems.append(
                        f"{where}: kind {kind!r} missing field "
                        f"{field!r}")
        seq = event.get("seq")
        if isinstance(seq, int):
            if last_seq is not None and seq <= last_seq:
                problems.append(
                    f"{where}: seq {seq} not greater than previous "
                    f"{last_seq} (log not ordered)")
            last_seq = seq
        else:
            problems.append(f"{where}: seq missing or not an int")
    return problems


def validate_event_log(path: str) -> List[str]:
    """Parse + validate a JSON-Lines event log file."""
    try:
        events = read_event_log(path)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    return validate_events(events)
