"""Event-log validation CLI: ``python -m repro.obsv log.jsonl ...``

Exit status 0 when every log parses and passes the schema check
(envelope fields, schema version, known kinds, per-kind required
fields, strictly increasing ``seq``); 1 otherwise.  CI's obsv-smoke
job runs this against the logs its sweep and campaign produce.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..telemetry import console
from .bus import read_event_log, validate_event_log


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obsv",
        description="validate repro event logs (JSON-Lines)")
    parser.add_argument("logs", nargs="+", metavar="events.jsonl",
                        help="event log files to validate")
    parser.add_argument("--quiet", action="store_true",
                        help="print only failures")
    args = parser.parse_args(argv)

    failed = 0
    for path in args.logs:
        problems = validate_event_log(path)
        if problems:
            failed += 1
            console(f"INVALID {path}")
            for problem in problems[:20]:
                console(f"  {problem}")
            if len(problems) > 20:
                console(f"  ... and {len(problems) - 20} more")
        elif not args.quiet:
            try:
                count = len(read_event_log(path))
            except (OSError, ValueError):
                count = 0
            console(f"ok {path} ({count} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
