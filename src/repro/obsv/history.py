"""Cross-run bench history: trend reports over ``BENCH_*.json`` runs.

The repo's benchmark gates (``benchmarks/bench_engine.py --check``,
``BENCH_snapshot.json``) each freeze ONE payload; regressions show up
only as a binary pass/fail against that single baseline.  This module
turns a *directory of* bench payloads -- e.g. CI artifacts collected
over time, one timestamped copy per run -- into per-metric trend
series, so a slow 3%-per-week drift that never trips the 25%% gate is
still visible.

Inputs
------
* ``BENCH_*.json`` files (recursively).  Every top-level numeric
  scalar in the payload becomes a metric sample; the ``bench`` key
  names the series.  Files sort by modification time (ties broken by
  path) so "ingest the artifact directory" yields chronological
  trends without requiring embedded timestamps.
* ``*events*.jsonl`` event logs from the :mod:`repro.obsv.bus`.
  Sweep and campaign summary events contribute throughput samples
  (``specs/sec``, ``trials/sec``, cache hit ratio) to synthetic
  ``sweep`` / ``campaign`` series.

Outputs
-------
* :meth:`HistoryReport.render_terminal` -- sparkline per metric with
  first/last/delta annotations (pure ASCII + unicode ticks, no deps).
* :meth:`HistoryReport.render_html` -- a standalone HTML page with
  inline SVG line charts, suitable as a CI artifact.
"""

from __future__ import annotations

import html
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..telemetry import get_logger
from .bus import read_event_log

log = get_logger("obsv.history")


class BenchRecord:
    """One bench payload (or event-log summary) flattened to metrics."""

    def __init__(self, series: str, source: str,
                 metrics: Dict[str, float], order: Tuple):
        self.series = series
        self.source = source
        self.metrics = metrics
        self.order = order

    def to_dict(self) -> Dict:
        return {"series": self.series, "source": self.source,
                "metrics": self.metrics}


def _numeric_scalars(payload: Dict) -> Dict[str, float]:
    out = {}
    for key, value in payload.items():
        if isinstance(value, bool):
            out[key] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def load_bench_file(path: str) -> Optional[BenchRecord]:
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as err:
        log.warning("skipping unreadable bench file %s: %s", path, err)
        return None
    if not isinstance(payload, dict):
        return None
    metrics = _numeric_scalars(payload)
    if not metrics:
        return None
    series = str(payload.get("bench", os.path.basename(path)))
    order = (os.path.getmtime(path), path)
    return BenchRecord(series, path, metrics, order)


def _summarize_events(path: str) -> List[BenchRecord]:
    """Throughput samples from one event log's summary events."""
    try:
        events = read_event_log(path)
    except (OSError, ValueError) as err:
        log.warning("skipping unreadable event log %s: %s", path, err)
        return []
    records: List[BenchRecord] = []
    order = (os.path.getmtime(path), path)
    for event in events:
        kind = event.get("kind")
        if kind == "sweep_finish":
            metrics: Dict[str, float] = {}
            elapsed = float(event.get("elapsed_s") or 0.0)
            n_specs = float(event.get("n_specs") or 0.0)
            if elapsed > 0:
                metrics["specs_per_sec"] = n_specs / elapsed
                metrics["sweep_elapsed_s"] = elapsed
            hits = float(event.get("cache_hits") or 0.0)
            misses = float(event.get("cache_misses") or 0.0)
            if hits + misses > 0:
                metrics["cache_hit_ratio"] = hits / (hits + misses)
            metrics["retries"] = float(event.get("retries") or 0.0)
            if metrics:
                records.append(BenchRecord("sweep", path, metrics,
                                           order))
        elif kind == "campaign_finish":
            metrics = {}
            elapsed = float(event.get("elapsed_s") or 0.0)
            trials = float(event.get("trials") or 0.0)
            if elapsed > 0 and trials:
                metrics["trials_per_sec"] = trials / elapsed
            metrics["failures"] = float(event.get("failures") or 0.0)
            if metrics:
                records.append(BenchRecord("campaign", path, metrics,
                                           order))
    return records


def collect_records(root: str) -> List[BenchRecord]:
    """Walk ``root`` for bench payloads and event logs.  Accepts a
    single file too."""
    paths: List[str] = []
    if os.path.isfile(root):
        paths = [root]
    else:
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                paths.append(os.path.join(dirpath, name))
    records: List[BenchRecord] = []
    for path in paths:
        base = os.path.basename(path)
        if base.startswith("BENCH") and base.endswith(".json"):
            record = load_bench_file(path)
            if record:
                records.append(record)
        elif base.endswith(".jsonl") and "events" in base:
            records.extend(_summarize_events(path))
    records.sort(key=lambda r: (r.series, r.order))
    return records


class HistoryReport:
    """Per-series, per-metric trend lines built from bench records."""

    def __init__(self, records: Sequence[BenchRecord]):
        self.records = list(records)
        # series -> metric -> [samples in chronological order]
        self.trends: Dict[str, Dict[str, List[float]]] = {}
        self.sources: Dict[str, List[str]] = {}
        for record in self.records:
            series = self.trends.setdefault(record.series, {})
            self.sources.setdefault(record.series,
                                    []).append(record.source)
            for metric, value in record.metrics.items():
                series.setdefault(metric, []).append(value)

    @property
    def empty(self) -> bool:
        return not self.trends

    # ------------------------------------------------------- terminal

    def render_terminal(self, width: int = 40) -> str:
        # Imported here, not at module top: repro.harness imports
        # repro.obsv (sweep's event bus), so a module-level import
        # back into the harness would be circular.
        from ..harness.report import sparkline
        if self.empty:
            return ("bench history: no BENCH_*.json or *events*.jsonl "
                    "found")
        lines: List[str] = []
        for series in sorted(self.trends):
            metrics = self.trends[series]
            runs = max(len(v) for v in metrics.values())
            title = f"{series}  ({runs} run{'s' if runs != 1 else ''})"
            lines.append(title)
            lines.append("=" * max(len(title), 40))
            name_width = max(len(m) for m in metrics) + 2
            for metric in sorted(metrics):
                values = metrics[metric]
                spark = sparkline(values, width=width)
                first, last = values[0], values[-1]
                note = f"first={first:g} last={last:g}"
                if first:
                    delta = (last - first) / abs(first)
                    note += f" ({delta:+.1%})"
                lines.append(f"  {metric:<{name_width}}{spark}  {note}")
            lines.append("")
        return "\n".join(lines).rstrip("\n")

    # ----------------------------------------------------------- html

    def render_html(self) -> str:
        parts = [
            "<!doctype html><html><head><meta charset='utf-8'>",
            "<title>repro bench history</title>",
            "<style>body{font-family:monospace;background:#111;"
            "color:#ddd;margin:2em}h2{color:#8cf}"
            ".chart{display:inline-block;margin:0 1.5em 1.5em 0}"
            ".chart figcaption{font-size:12px;color:#aaa}"
            "svg{background:#1a1a1a;border:1px solid #333}"
            "</style></head><body>",
            "<h1>repro bench history</h1>",
        ]
        if self.empty:
            parts.append("<p>(no records)</p>")
        for series in sorted(self.trends):
            metrics = self.trends[series]
            runs = max(len(v) for v in metrics.values())
            parts.append(f"<h2>{html.escape(series)}</h2>"
                         f"<p>{runs} runs</p>")
            for metric in sorted(metrics):
                values = metrics[metric]
                caption = (f"{html.escape(metric)}: "
                           f"{values[0]:g} → {values[-1]:g}")
                parts.append(
                    "<figure class='chart'>"
                    + _svg_line(values)
                    + f"<figcaption>{caption}</figcaption></figure>")
        parts.append("</body></html>")
        return "".join(parts)

    def save_html(self, path: str) -> str:
        with open(path, "w") as handle:
            handle.write(self.render_html())
        return path

    def to_dict(self) -> Dict:
        return {"series": {name: dict(metrics)
                           for name, metrics in self.trends.items()},
                "sources": self.sources}


def _svg_line(values: Sequence[float], width: int = 260,
              height: int = 80, pad: int = 6) -> str:
    """A single-series inline SVG polyline (no external assets)."""
    values = [float(v) for v in values]
    if not values:
        return f"<svg width='{width}' height='{height}'></svg>"
    low, high = min(values), max(values)
    span = high - low
    n = len(values)
    points = []
    for i, value in enumerate(values):
        x = pad + (width - 2 * pad) * (i / (n - 1) if n > 1 else 0.5)
        y_norm = (value - low) / span if span else 0.5
        y = height - pad - (height - 2 * pad) * y_norm
        points.append(f"{x:.1f},{y:.1f}")
    dots = "".join(
        f"<circle cx='{p.split(',')[0]}' cy='{p.split(',')[1]}' "
        "r='2' fill='#8cf'/>" for p in points)
    return (f"<svg width='{width}' height='{height}'>"
            f"<polyline points='{' '.join(points)}' fill='none' "
            "stroke='#8cf' stroke-width='1.5'/>" + dots + "</svg>")
