"""Run telemetry: the ``repro.*`` logger hierarchy and console output.

Two channels, deliberately separated:

* :func:`console` -- the *data* channel: tables, figures, JSON.  It
  writes to ``sys.stdout`` (looked up at call time so pytest's capsys
  and shell redirection both see it) and is the only sanctioned way for
  library/CLI code to produce stdout.
* the ``repro.*`` loggers -- the *diagnostic* channel: progress,
  timings, cache provenance, warnings.  :func:`configure_logging`
  attaches a stderr handler with run context baked into the format, so
  ``command > data.txt`` keeps diagnostics visible and the data clean.

Run context
-----------
Every log record passes through :class:`RunContextFilter`, which stamps
it with the current ``run_id`` and ``spec_hash`` (both ``-`` outside a
run).  :func:`run_context` scopes them::

    with run_context(run_id="fig9", spec_hash=spec.cache_key()[:12]):
        log.info("starting")          # ... [fig9 1a2b3c4d5e6f] starting
"""

from __future__ import annotations

import contextlib
import logging
import sys
from typing import Dict, Iterator, Optional

ROOT_LOGGER = "repro"

_FORMAT = ("%(asctime)s %(levelname)-7s %(name)s "
           "[%(run_id)s %(spec_hash)s] %(message)s")

# Current run context; module-level so every logger in the hierarchy
# sees the same scope without threading it through call signatures.
_context = {"run_id": "-", "spec_hash": "-"}


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``get_logger("harness")``
    -> ``repro.harness``).  Pass a dotted name already starting with
    ``repro`` to use it verbatim."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


class RunContextFilter(logging.Filter):
    """Stamps every record with the active run_id / spec_hash."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.run_id = _context["run_id"]
        record.spec_hash = _context["spec_hash"]
        return True


def current_context() -> Dict[str, str]:
    """A copy of the active run context (``run_id``/``spec_hash``).

    The event bus stamps these onto every event as correlation IDs,
    and the parallel executor ships them to pool workers so records
    and events emitted *inside a worker process* carry the parent's
    context."""
    return dict(_context)


def seed_context(fields: Dict[str, str]) -> None:
    """Install ``fields`` as the base run context of this process.

    For worker-process initializers only: unlike :func:`run_context`
    it is not scoped, because a pool worker has no enclosing frame to
    restore to -- the parent's context *is* its ambient context."""
    _context.update({key: value for key, value in fields.items()
                     if key in _context})


@contextlib.contextmanager
def run_context(run_id: Optional[str] = None,
                spec_hash: Optional[str] = None) -> Iterator[None]:
    """Scope the run identifiers stamped onto log records."""
    previous = dict(_context)
    if run_id is not None:
        _context["run_id"] = run_id
    if spec_hash is not None:
        _context["spec_hash"] = spec_hash
    try:
        yield
    finally:
        _context.update(previous)


def configure_logging(level: int = logging.INFO,
                      stream=None) -> logging.Logger:
    """Attach a stderr handler (with run context) to the ``repro``
    logger.  Idempotent: reconfiguring replaces the handler installed
    here rather than stacking duplicates."""
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(level)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_telemetry", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
    handler.addFilter(RunContextFilter())
    handler._repro_telemetry = True
    root.addHandler(handler)
    # Diagnostics stay on our handler; don't double-print via the root.
    root.propagate = False
    return root


def console(text: str = "") -> None:
    """Write one line of *data* output to stdout.

    ``sys.stdout`` is resolved at call time, not import time, so
    capture tools (pytest capsys) and late redirection work."""
    sys.stdout.write(text)
    sys.stdout.write("\n")
