#!/usr/bin/env python
"""Quickstart: simulate one benchmark under all four persistency designs.

This is the 60-second tour of the library's public API:

1. pick a Table 4 workload and generate its multi-threaded program;
2. pick a design (IntelX86 / DPO / HOPS / PMEM-Spec) and build a system;
3. run and compare throughput -- the paper's Figure 9 in miniature.

Run:  python examples/quickstart.py
"""

from repro.config import table3_config
from repro.harness import format_table3
from repro.persistency import design_by_name
from repro.system import build_system
from repro.workloads import workload_by_name


def main() -> None:
    print(format_table3())
    print()

    n_threads = 4
    results = {}
    for design_name in ("IntelX86", "DPO", "HOPS", "PMEM-Spec"):
        # Build the same workload (same seed => identical trace) for a
        # fair comparison; the compiler lowers it per design.
        workload = workload_by_name("tpcc", seed=42)
        program = workload.build(n_threads=n_threads, fases_per_thread=25)
        system = build_system(program, design_by_name(design_name),
                              table3_config(n_cores=n_threads))
        result = system.run()
        results[design_name] = result
        print(f"{design_name:>10}: {result.fases_committed} transactions "
              f"in {result.cycles:,} cycles "
              f"({result.throughput / 1e6:.2f} M tx/s), "
              f"misspeculations={result.misspeculations}")

    baseline = results["IntelX86"].throughput
    print("\nNormalised to IntelX86 (the paper's Figure 9 metric):")
    for name, result in results.items():
        bar = "#" * round(40 * result.throughput / baseline)
        print(f"  {name:>10}  {result.throughput / baseline:5.3f}  {bar}")

    best = max(results, key=lambda name: results[name].throughput)
    print(f"\nFastest design: {best} -- the paper's claim is that this is "
          f"PMEM-Spec,\ndespite it being the *strict* persistency model.")


if __name__ == "__main__":
    main()
