#!/usr/bin/env python
"""Crash recovery on a persistent red-black tree.

Failure atomicity is what PMEM-Spec's whole recovery story rests on
(§4.4 treats misspeculation as a *virtual* power failure).  This demo
shows the real thing:

1. two threads insert/delete into persistent red-black trees through
   undo-logged FASEs under the PMEM-Spec design;
2. we cut power at a series of arbitrary cycles;
3. ADR preserves exactly the PM controller's accepted writes -- the
   snapshot may contain *torn* FASEs (some node pointers updated, some
   not; rotations half-applied);
4. the recovery protocol scans each thread's epoch-stamped undo log and
   rolls uncommitted FASEs back;
5. a full structural validator walks the recovered trees: BST order,
   red-red violations, black-height balance, parent pointers, cycles.

Run:  python examples/crash_recovery_demo.py
"""

from repro.runtime import measure_run_cycles, run_with_crash
from repro.workloads import RBTree

DESIGN = "PMEM-Spec"
THREADS = 2
FASES = 15
SEED = 2026


def main() -> None:
    total = measure_run_cycles(RBTree, DESIGN, THREADS, FASES, SEED)
    print(f"Uninterrupted run: {total:,} cycles for "
          f"{THREADS * FASES} tree operations under {DESIGN}.\n")

    print(f"{'crash cycle':>12} {'committed':>10} {'rolled-back':>12} "
          f"{'undo writes':>12} {'tree valid':>11}")
    print("-" * 62)
    consistent = 0
    crashes = [round(total * fraction) for fraction in
               (0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95)]
    for crash_cycle in crashes:
        outcome = run_with_crash(RBTree, DESIGN, crash_cycle,
                                 n_threads=THREADS,
                                 fases_per_thread=FASES, seed=SEED)
        status = "yes" if outcome.consistent else "NO!"
        consistent += outcome.consistent
        print(f"{crash_cycle:>12,} {outcome.commits_before_crash:>10} "
              f"{len(outcome.report.rolled_back_threads):>12} "
              f"{outcome.report.total_undo_writes:>12} {status:>11}")
        if not outcome.consistent:
            for violation in outcome.violations[:3]:
                print(f"    !! {violation}")

    print("-" * 62)
    print(f"{consistent}/{len(crashes)} crash points recovered to a "
          f"structurally valid red-black tree.")
    assert consistent == len(crashes)


if __name__ == "__main__":
    main()
