#!/usr/bin/env python
"""Figure 2: the programming-model comparison, made concrete.

One unannotated FASE (a locked two-word update) is lowered by the
compiler for each design's ISA; this prints the three machine-op
streams side by side and counts the ordering annotations each model
imposes -- the paper's programmability argument in one screen:

* IntelX86/DPO: CLWB per dirty line + SFENCE per ordering point;
* HOPS: custom ofence/dfence instructions between log and data;
* PMEM-Spec: a single spec-barrier; spec-assign/revoke are inserted by
  the compiler, invisible to the programmer.

Run:  python examples/programming_models.py
"""

from repro.compiler import annotation_burden, lower_fase
from repro.isa import (
    Compute,
    Fase,
    LockAcquire,
    LockRelease,
    PRead,
    PWrite,
    describe,
    is_barrier,
)
from repro.runtime import DATA_BASE


def sample_fase() -> Fase:
    addr = DATA_BASE + 0x40
    return Fase(0, [
        LockAcquire(0),
        PRead(addr),
        PWrite(addr, 17),
        PWrite(addr + 64, 18),
        Compute(10),
        LockRelease(0),
    ])


def main() -> None:
    fase = sample_fase()
    streams = {}
    for flavor in ("x86", "hops", "strand", "pmemspec"):
        streams[flavor] = lower_fase(sample_fase(), 0, flavor, epoch=0)

    width = 30
    names = {"x86": "IntelX86 / DPO", "hops": "HOPS",
             "strand": "StrandWeaver", "pmemspec": "PMEM-Spec"}
    print("One FASE (lock; read; two writes; unlock), lowered per design:")
    print()
    header = "".join(f"{names[f]:<{width}}" for f in streams)
    print(header)
    print("-" * (width * 4))
    depth = max(len(s.ops) for s in streams.values())
    for row in range(depth):
        line = ""
        for flavor, lowered in streams.items():
            if row < len(lowered.ops):
                op = lowered.ops[row]
                text = describe(op)
                if is_barrier(op):
                    text = f">> {text.upper()} <<"
                line += f"{text:<{width}}"
            else:
                line += " " * width
        print(line.rstrip())

    print()
    print(f"{'design':<16}{'total ops':>10}{'fences':>8}"
          f"{'programmer-visible':>20}")
    print("-" * 54)
    for flavor, lowered in streams.items():
        burden = annotation_burden(fase, flavor)
        print(f"{names[flavor]:<16}{len(lowered.ops):>10}"
              f"{burden['fences']:>8}{burden['programmer_visible']:>20}")

    print()
    print("PMEM-Spec's program is the strict-persistency ideal: the only "
          "annotation is\nthe spec-barrier ending the failure-atomic "
          "region (§4.1).")


if __name__ == "__main__":
    main()
