#!/usr/bin/env python
"""§7 made visible: multiple PM controllers break strict persist order.

PMEM-Spec detects ordering violations *inside* one PM controller, and
its persist path is FIFO *per controller*.  With two block-interleaved
controllers and an asymmetric interconnect, two stores of one core --
say an undo-log entry and the data write it protects -- can become
durable out of program order.  This demo:

1. runs a one-thread workload whose invariant is "A == B" (each FASE
   writes the same value to an even-block and an odd-block address);
2. power-fails it at many points with the odd controller slowed down;
3. shows unrecoverable tears without the paper's proposed ordered-NoC
   extension, and none with it.

Run:  python examples/multi_pmc_demo.py
"""

from repro.config import table3_config
from repro.isa import Fase, PRead, Program, PWrite, ThreadProgram
from repro.persistency import design_by_name
from repro.runtime import DATA_BASE, run_recovery
from repro.system import build_system

ADDR_A = DATA_BASE            # even block -> controller 0
ADDR_B = DATA_BASE + 64       # odd block  -> controller 1
FASES = 12
SKEW = 400                    # extra cycles into controller 1


def pair_program() -> Program:
    fases = [Fase(index, [PRead(ADDR_A),
                          PWrite(ADDR_A, index + 1),
                          PWrite(ADDR_B, index + 1)])
             for index in range(FASES)]
    return Program("pair", [ThreadProgram(0, fases, think_cycles=50)],
                   initial_heap={ADDR_A: 0, ADDR_B: 0})


def sweep(n_pmcs: int, ordered: bool) -> tuple:
    config = table3_config(n_cores=1, n_pm_controllers=n_pmcs,
                           ordered_noc=ordered)
    reference = build_system(pair_program(), design_by_name("PMEM-Spec"),
                             config)
    if n_pmcs > 1:
        reference.pmc.set_controller_extra(1, SKEW)
    total = reference.run().cycles
    tears = checked = 0
    for crash_cycle in range(50, total, max(1, total // 150)):
        system = build_system(pair_program(),
                              design_by_name("PMEM-Spec"), config)
        if n_pmcs > 1:
            system.pmc.set_controller_extra(1, SKEW)
        system.run(until=crash_cycle)
        report = run_recovery(system.persisted_snapshot(), 1)
        image = report.data_image()
        checked += 1
        if image.get(ADDR_A, 0) != image.get(ADDR_B, 0):
            tears += 1
    return tears, checked


def main() -> None:
    print(__doc__.split("\n\n")[0])
    print()
    for label, n_pmcs, ordered in (
            ("1 PM controller (the paper's evaluated design)", 1, False),
            ("2 PM controllers, plain NoC  (§7 limitation)", 2, False),
            ("2 PM controllers, ordered NoC (§7 future work)", 2, True)):
        tears, checked = sweep(n_pmcs, ordered)
        verdict = ("UNRECOVERABLE TEARS" if tears else "always consistent")
        print(f"  {label:<48} {tears:>3}/{checked} crash points torn "
              f"-> {verdict}")
    print()
    print("Strict intra-thread persist order -- the property the whole "
          "design rests on --\nends at the controller boundary unless "
          "the interconnect preserves it.")


if __name__ == "__main__":
    main()
