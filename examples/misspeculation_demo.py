#!/usr/bin/env python
"""Misspeculation end to end (§5, §6, §8.4).

PMEM-Spec lets every PM access run speculatively; this demo makes the
speculation *fail* on purpose, twice:

* **Stale read (load misspeculation)** -- a store's persist-path message
  is made unrealistically slow (the paper's "10x slower" regime is
  pushed to 125x so a tiny two-core run shows it); a reload fetches
  stale data from PM and the PM controller's automaton observes the
  ``WriteBack - Read - Persist`` pattern of Figure 6a.
* **Missing update (store misspeculation)** -- two threads update one
  word under a lock, but one core's ring path is congested, so its
  persist arrives after the other thread's later one.  The compiler's
  spec-IDs carry the lock's happens-before order to the controller,
  which sees the IDs out of order (Figure 7).

Each detection is treated as a *virtual power failure*: the hardware
interrupts the OS, the OS relays to the failure-atomic runtime, the
in-flight FASEs roll back through their undo logs and re-execute --
and every transaction still commits.

Run:  python examples/misspeculation_demo.py
"""

from repro.persistency import design_by_name
from repro.system import build_system
from repro.workloads import LoadMisspecProbe, StoreMisspecProbe


def banner(text: str) -> None:
    print("\n" + "=" * 64)
    print(text)
    print("=" * 64)


def show(result, system) -> None:
    print(f"  load misspeculations : {result.load_misspeculations}")
    print(f"  store misspeculations: {result.store_misspeculations}")
    print(f"  stale PM reads       : {result.stale_loads}")
    print(f"  OS interrupts relayed: "
          f"{result.stats['interrupts'].get('relayed_interrupts', 0)}")
    print(f"  FASEs aborted/retried: {result.fases_aborted}")
    print(f"  FASEs committed      : {result.fases_committed}")
    events = system.runtime.misspec_events
    if events:
        ev = events[0]
        print(f"  first event          : {ev.kind} misspeculation at "
              f"block 0x{ev.block:x}, cycle {ev.time} "
              f"(physical address 0x{ev.physical_address:x} written to "
              f"the OS designated space)")


def load_probe(slow_path: bool):
    probe = LoadMisspecProbe(seed=1)
    config = LoadMisspecProbe.recommended_config(2, slow_path=slow_path)
    program = probe.build(n_threads=2, fases_per_thread=10)
    system = build_system(program, design_by_name("PMEM-Spec"), config)
    return system, system.run()


def main() -> None:
    banner("1. Load misspeculation probe, 125x-slow persist path")
    system, result = load_probe(slow_path=True)
    show(result, system)
    assert result.load_misspeculations > 0

    banner("2. Same probe at the paper's 20 ns persist path")
    system, result = load_probe(slow_path=False)
    show(result, system)
    print("  -> shorter-than-regular-path latency: misspeculation is "
          "impossible (§8.4)")
    assert result.misspeculations == 0

    banner("3. Store misspeculation probe, congested ring on core 0")
    probe = StoreMisspecProbe(seed=1)
    program = probe.build(n_threads=2, fases_per_thread=20)
    system = build_system(program, design_by_name("PMEM-Spec"),
                          StoreMisspecProbe.recommended_config(2))
    system.persist_path.set_core_extra(
        0, StoreMisspecProbe.slow_core_extra_cycles())
    result = system.run()
    show(result, system)
    assert result.store_misspeculations > 0

    banner("4. The same storm under EAGER recovery (§6.2.2)")
    probe = StoreMisspecProbe(seed=1)
    program = probe.build(n_threads=2, fases_per_thread=20)
    system = build_system(program, design_by_name("PMEM-Spec"),
                          StoreMisspecProbe.recommended_config(2),
                          recovery_mode="eager")
    system.persist_path.set_core_extra(
        0, StoreMisspecProbe.slow_core_extra_cycles())
    result = system.run()
    show(result, system)

    print("\nAll probes recovered to full commit counts: misspeculation "
          "is a performance\nevent, never a correctness one.")


if __name__ == "__main__":
    main()
